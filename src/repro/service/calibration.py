"""Per-deployment threshold auto-calibration from served evidence.

Every completed ranging round the service executes is free calibration
data: on the simulated substrate the request carries the true distance,
so the round's signed ranging error (estimate − truth) is observable at
decision time.  :class:`CalibrationStore` keeps a bounded window of
recent errors per environment and turns them into the deployment's
σ_d estimate; :meth:`CalibrationStore.summary` then picks the tightest
threshold τ meeting a target FRR through the §VI-C Gaussian model
(:class:`repro.core.decisions.CalibrationContext` →
:meth:`repro.eval.frr_far.GaussianAuthModel.threshold_for_frr`).

This is the service half of the decide seam: evidence is recorded once
on the round path (no extra renders, no RNG), and τ selection is a pure
fan-out over it — the wire ``calibrate`` message
(:class:`~repro.service.protocol.CalibrateRequest`) just reads the
current summary.  Until an environment has seen enough traffic
(``min_samples``), the paper-implied σ priors
(:data:`repro.eval.frr_far.PAPER_SIGMAS_M`) answer instead, flagged
``source="prior"``; hardware deployments without ground truth would
feed the window from supervised enrollment rounds the same way.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.core.decisions import CalibrationContext
from repro.eval.frr_far import PAPER_SIGMAS_M

__all__ = ["CalibrationStore", "CalibrationSummary", "robust_sigma"]


def robust_sigma(errors) -> float:
    """MAD-based σ estimate (×1.4826), robust to ⊥-adjacent outliers.

    The same estimator the evaluation stack pools per cell
    (``repro.eval.stats.ErrorStats.robust_std_cm``), in meters.

    The MAD of a sample whose *majority* is one repeated value is 0 —
    common in served windows, where quantized estimates at one distance
    repeat exactly — which would discard the spread the minority carries
    (e.g. ``[0.02]*4 + [0.05]``).  When that happens the sample standard
    deviation answers instead, so the estimate is 0 only for genuinely
    zero-spread windows (which :meth:`CalibrationStore.sigma` then
    routes to the paper prior — the Gaussian model needs σ > 0).
    """
    values = sorted(float(e) for e in errors)
    if not values:
        raise ValueError("need at least one error sample")
    median = _median(values)
    deviations = sorted(abs(v - median) for v in values)
    mad = _median(deviations)
    if mad > 0.0:
        return 1.4826 * mad
    if len(values) < 2:
        return 0.0
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    return math.sqrt(variance)


def _median(ordered: list[float]) -> float:
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


@dataclass(frozen=True)
class CalibrationSummary:
    """One environment's calibration state at a point in time.

    ``source`` is ``"measured"`` when σ comes from the served-traffic
    error window, ``"prior"`` when it is the paper-implied σ (not enough
    samples yet).  ``threshold_m`` is the tightest τ whose modeled FRR
    meets ``target_frr`` under that σ (clamped to the acoustic range
    d_s when the target is unreachable).
    """

    environment: str
    threshold_m: float
    sigma_m: float
    samples: int
    target_frr: float
    source: str


class CalibrationStore:
    """Bounded per-environment windows of observed ranging errors.

    Parameters
    ----------
    window:
        Max errors retained per environment (oldest evicted first) —
        keeps the estimate tracking a drifting deployment instead of
        averaging over its whole history.
    min_samples:
        Below this many samples the paper prior answers instead of the
        (still noisy) measured σ.
    """

    def __init__(self, window: int = 1024, min_samples: int = 8) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window!r}")
        if min_samples < 2:
            raise ValueError(f"min_samples must be >= 2, got {min_samples!r}")
        self.window = window
        self.min_samples = min_samples
        self._errors: dict[str, deque[float]] = {}
        self._recorded = 0

    @property
    def recorded(self) -> int:
        """Total errors ever recorded (evicted samples included)."""
        return self._recorded

    def record(self, environment: str, error_m: float) -> None:
        """Add one completed round's signed ranging error (meters)."""
        if not isinstance(environment, str) or not environment:
            raise ValueError("environment must be a non-empty string")
        error_m = float(error_m)
        if not math.isfinite(error_m):
            return  # defensive: never poison the window
        window = self._errors.get(environment)
        if window is None:
            window = self._errors[environment] = deque(maxlen=self.window)
        window.append(error_m)
        self._recorded += 1

    def samples(self, environment: str) -> int:
        """Errors currently windowed for ``environment``."""
        return len(self._errors.get(environment, ()))

    def sigma(self, environment: str) -> tuple[float, int, str]:
        """``(sigma_m, samples, source)`` for an environment.

        Measured (robust MAD σ over the window) once ``min_samples``
        errors are in; otherwise the paper-implied prior — ``office``'s
        for environments the paper did not profile.  A degenerate
        all-identical window (σ = 0) also falls back to the prior: the
        Gaussian model needs σ > 0.
        """
        window = self._errors.get(environment, ())
        prior = PAPER_SIGMAS_M.get(environment, PAPER_SIGMAS_M["office"])
        if len(window) >= self.min_samples:
            measured = robust_sigma(window)
            if measured > 0:
                return measured, len(window), "measured"
        return prior, len(window), "prior"

    def summary(
        self, environment: str, target_frr: float = 0.05
    ) -> CalibrationSummary:
        """Current σ and the tightest τ meeting ``target_frr`` (fraction)."""
        sigma_m, samples, source = self.sigma(environment)
        context = CalibrationContext(sigma_m=sigma_m, target_frr=target_frr)
        return CalibrationSummary(
            environment=environment,
            threshold_m=context.threshold_m(),
            sigma_m=sigma_m,
            samples=samples,
            target_frr=target_frr,
            source=source,
        )
