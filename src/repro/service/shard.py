"""Shard-by-session front tier: N supervised workers, one TCP endpoint.

:class:`ShardedAuthServer` multiplies the streaming service across CPU
cores the way a deployment would: it owns the public JSON-lines TCP
listener and routes every :class:`~repro.service.protocol.RangingRequest`
to one of N spawned worker processes, each running a full
:class:`~repro.service.AuthService` (event loop, scheduler, DSP executor)
behind a private unix-domain socket.

Routing is **by session, not by request**: the shard index is a stable
hash of the request's session key — ``(environment, distance_m, seed)``,
the triple that fixes a cell's entire RNG universe — so every round of
every request touching one session lands on the same worker, in every
process topology.  Two consequences:

* **Determinism / bit-identity** — a worker runs the identical stage
  functions on the identical per-session RNG streams as the
  single-process server (and as ``run_cell_spec``); which worker that is
  cannot matter, and the router never re-encodes reply payloads — it
  forwards the workers' raw JSON lines byte-for-byte — so the served
  bits are exactly the single-process bits at any ``--workers`` count.
* **Batch locality** — rounds of one session coalesce in one worker's
  scheduler instead of being sprayed thin across all of them.

The hash is :func:`hashlib.blake2b`, not the builtin ``hash`` (which is
salted per process and would route differently on every restart).

Supervision — the self-healing contract
---------------------------------------

Every shard slot has a supervisor task joined on its worker process.  A
worker that exits outside a drain is a **crash**: the supervisor respawns
it *on the same slot* after a bounded exponential backoff
(``respawn_backoff_s`` doubling up to ``respawn_backoff_max_s``); a slot
that keeps dying (more than ``max_respawns`` crashes inside a
``crash_reset_s`` window) opens a **circuit breaker** and stays down —
requests routed to it get a structured ``unavailable`` error instead of
an infinite respawn loop.

Nothing is replayed.  When a worker dies, every request in flight on it
gets an **attributed, retriable** ``unavailable``
:class:`~repro.service.protocol.ErrorReply` (the router tracks which
request ids each shard owes replies to by peeking at forwarded reply
lines — forwarding itself stays byte-verbatim).  Because routing is
deployment-pinned and every round is deterministic in
``(session, trial)``, a client retry of the same request id lands on the
respawned worker and yields **byte-identical** decisions — retry-safety
is a corollary of the determinism contract, not a journal.

Shutdown is a coordinated drain: the router flips to answering new
requests with ``busy``, cancels the supervisors (no respawns during
shutdown), SIGTERMs the workers (each
:meth:`~repro.service.AuthService.drain`\\ s: in-flight streams finish,
the DSP pool closes), and waits for them to exit.  A worker that
receives SIGINT/SIGTERM directly (Ctrl-C hits the whole process group)
drains itself the same way.

Telemetry fans out: a :class:`~repro.service.protocol.StatsRequest` or
:class:`~repro.service.protocol.CalibrateRequest` is forwarded to
**all** workers, and each answers with its own reply carrying ``(shard,
shards)`` so the client knows when it has the full set — each shard
calibrates from the sessions routed to it.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import multiprocessing
import os
import signal
import tempfile
from dataclasses import dataclass, field

from repro.service.faults import FaultInjector, FaultPlan
from repro.service.protocol import (
    CalibrateRequest,
    ErrorReply,
    Message,
    ProtocolError,
    RangingRequest,
    StatsRequest,
    decode_message,
    encode_message,
)
from repro.service.server import AuthService

__all__ = ["ShardedAuthServer", "session_key", "shard_for_session"]

#: Reply ``type`` tags that end a request's reply stream — receiving one
#: means the worker owes that request id nothing further.
_TERMINAL_REPLY_TAGS = frozenset(
    {"request_complete", "error", "stats_reply", "calibrate_reply"}
)


def session_key(request: RangingRequest) -> str:
    """The routing key of a request: its RNG-universe-defining triple.

    ``first_trial``/``rounds`` slice *within* a session and must not
    change routing — requests addressing disjoint slices of one cell
    still belong on one worker.  ``distance_m`` uses ``repr``, which is
    exact for floats, so distinct cells never alias.
    """
    return f"{request.environment}|{request.distance_m!r}|{request.seed}"


def shard_for_session(key: str, shards: int) -> int:
    """Stable shard index for a session key — identical in every process.

    blake2b rather than ``hash()``: the builtin is salted per interpreter
    (PYTHONHASHSEED), which would break routing stability across
    restarts and across the router/test processes.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards!r}")
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % shards


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------


def _shard_worker_main(
    socket_path: str,
    shard_index: int,
    shard_count: int,
    service_options: dict,
) -> None:
    """Entry point of one spawned shard worker (its own event loop)."""
    asyncio.run(
        _run_worker(socket_path, shard_index, shard_count, service_options)
    )


async def _run_worker(
    socket_path: str,
    shard_index: int,
    shard_count: int,
    service_options: dict,
) -> None:
    service = AuthService(
        shard_index=shard_index,
        shard_count=shard_count,
        **service_options,
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)
    async with service:
        server = await service.serve_unix(socket_path)
        try:
            await stop.wait()
            # Drain with the listener still open: streams in flight
            # finish; anything new gets a busy reply, not a dead socket.
            await service.drain()
        finally:
            server.close()
            await server.wait_closed()


# ----------------------------------------------------------------------
# Router
# ----------------------------------------------------------------------


class _ShardUnavailable(RuntimeError):
    """A shard has no live worker right now; the caller should retry."""


@dataclass
class _WorkerSlot:
    """One supervised shard slot: the pinned index outlives the process."""

    shard: int
    process: multiprocessing.Process | None = None
    #: Set while a live worker is accepting on this slot's socket.
    ready: asyncio.Event = field(default_factory=asyncio.Event)
    #: Crashes inside the current ``crash_reset_s`` window.
    crashes: int = 0
    last_crash_at: float = 0.0
    #: Total successful respawns over the slot's lifetime.
    respawns: int = 0
    #: Circuit breaker: the slot crash-looped and stays down.
    failed: bool = False


class ShardedAuthServer:
    """TCP front tier routing sessions to supervised worker processes.

    Parameters
    ----------
    workers:
        Number of shard worker processes (each a full
        :class:`~repro.service.AuthService`).
    socket_dir:
        Directory for the workers' unix sockets; a private temporary
        directory by default.
    service_options:
        Keyword arguments forwarded to every worker's ``AuthService``
        (``batch_size``, ``linger_ms``, ``queue_limit``, ``dsp_workers``,
        ``dsp_executor``, ``max_inflight_rounds``, ``dsp_timeout_s``).
        Must be picklable — they cross the spawn boundary.
    ready_timeout:
        Seconds to wait for each worker's socket to accept connections
        at :meth:`start` and after each respawn (spawned workers pay the
        package import once).
    max_respawns:
        Crash-loop circuit breaker: after this many crashes of one slot
        inside a ``crash_reset_s`` window, the slot stays down and its
        requests answer ``unavailable``.
    respawn_backoff_s / respawn_backoff_max_s:
        Bounded exponential backoff before each respawn: the Nth
        consecutive crash waits ``respawn_backoff_s * 2**(N-1)`` seconds,
        capped at ``respawn_backoff_max_s``.
    crash_reset_s:
        A slot that stays up this long after a crash gets its crash
        count forgiven (the backoff and breaker reset).
    respawn_wait_s:
        How long a request routed to a currently-dead shard waits for
        the respawn before answering ``unavailable`` (retriable) — this
        bounds added latency during recovery instead of queueing
        unboundedly behind a dead worker.
    fault_plan:
        Optional deterministic :class:`~repro.service.faults.FaultPlan`.
        The router consumes the ``kill_workers`` kind (SIGKILL after the
        Kth forwarded request); worker-side kinds travel to every worker
        via ``service_options``.

    Use as an async context manager, or ``start()`` … ``stop()``.
    """

    def __init__(
        self,
        workers: int,
        *,
        socket_dir: str | None = None,
        service_options: dict | None = None,
        ready_timeout: float = 60.0,
        max_respawns: int = 5,
        respawn_backoff_s: float = 0.25,
        respawn_backoff_max_s: float = 10.0,
        crash_reset_s: float = 60.0,
        respawn_wait_s: float = 30.0,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        if max_respawns < 0:
            raise ValueError(
                f"max_respawns must be >= 0, got {max_respawns!r}"
            )
        if respawn_backoff_s < 0 or respawn_backoff_max_s < 0:
            raise ValueError("respawn backoff values must be >= 0")
        self.workers = workers
        self.service_options = dict(service_options or {})
        self.ready_timeout = ready_timeout
        self.max_respawns = max_respawns
        self.respawn_backoff_s = respawn_backoff_s
        self.respawn_backoff_max_s = respawn_backoff_max_s
        self.crash_reset_s = crash_reset_s
        self.respawn_wait_s = respawn_wait_s
        self._faults: FaultInjector | None = None
        if fault_plan is not None and not fault_plan.empty:
            self._faults = FaultInjector(fault_plan)
            if fault_plan.has_worker_faults:
                self.service_options.setdefault("fault_plan", fault_plan)
        self._socket_dir = socket_dir
        self._owns_socket_dir = socket_dir is None
        self._slots: list[_WorkerSlot] = []
        self._supervisors: list[asyncio.Task] = []
        self._draining = False
        self._stopped = False

    # -- lifecycle -----------------------------------------------------

    def socket_path(self, shard: int) -> str:
        assert self._socket_dir is not None, "start() first"
        return os.path.join(self._socket_dir, f"shard-{shard}.sock")

    @property
    def total_respawns(self) -> int:
        """Successful worker respawns across all slots (telemetry)."""
        return sum(slot.respawns for slot in self._slots)

    def _spawn(self, shard: int) -> multiprocessing.Process:
        # A stale socket from the previous incarnation must go before
        # the replacement binds the same path.
        try:
            os.unlink(self.socket_path(shard))
        except OSError:
            pass
        context = multiprocessing.get_context("spawn")
        process = context.Process(
            target=_shard_worker_main,
            args=(
                self.socket_path(shard),
                shard,
                self.workers,
                self.service_options,
            ),
            name=f"repro-shard-{shard}",
            daemon=False,
        )
        process.start()
        return process

    async def start(self) -> None:
        """Spawn the workers, wait until all accept, start supervision."""
        if self._slots:
            return
        if self._socket_dir is None:
            self._socket_dir = tempfile.mkdtemp(prefix="repro-shards-")
        self._slots = [_WorkerSlot(shard) for shard in range(self.workers)]
        for slot in self._slots:
            slot.process = self._spawn(slot.shard)
        await asyncio.gather(
            *(self._wait_ready(slot) for slot in self._slots)
        )
        loop = asyncio.get_running_loop()
        self._supervisors = [
            loop.create_task(self._supervise(slot)) for slot in self._slots
        ]

    async def _wait_ready(self, slot: _WorkerSlot) -> None:
        """Poll until ``slot``'s socket accepts; sets ``slot.ready``."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.ready_timeout
        path = self.socket_path(slot.shard)
        while True:
            process = slot.process
            if process is None or not process.is_alive():
                raise RuntimeError(
                    f"shard worker {slot.shard} exited during startup "
                    f"(exitcode "
                    f"{process.exitcode if process else 'unknown'})"
                )
            try:
                reader, writer = await asyncio.open_unix_connection(path)
            except (FileNotFoundError, ConnectionRefusedError, OSError):
                if loop.time() >= deadline:
                    raise RuntimeError(
                        f"shard worker {slot.shard} did not become ready "
                        f"within {self.ready_timeout:.0f}s"
                    ) from None
                await asyncio.sleep(0.05)
                continue
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            slot.ready.set()
            return

    async def _supervise(self, slot: _WorkerSlot) -> None:
        """Respawn ``slot``'s worker on crash, with backoff and a breaker.

        Joins the current process off-loop; a worker exit during a drain
        is the expected shutdown.  Anything else is a crash: the slot's
        ready gate closes (requests wait, bounded by ``respawn_wait_s``),
        a bounded-exponential backoff elapses, and a fresh worker is
        spawned on the same pinned slot.  More than ``max_respawns``
        crashes inside a ``crash_reset_s`` window opens the circuit
        breaker: the slot stays down, its requests answer
        ``unavailable``, and the rest of the tier keeps serving.
        """
        loop = asyncio.get_running_loop()
        while True:
            process = slot.process
            if process is not None:
                await loop.run_in_executor(None, process.join)
            if self._draining or self._stopped:
                return
            slot.ready.clear()
            now = loop.time()
            if (
                slot.last_crash_at
                and now - slot.last_crash_at > self.crash_reset_s
            ):
                slot.crashes = 0
            slot.crashes += 1
            slot.last_crash_at = now
            if slot.crashes > self.max_respawns:
                slot.failed = True
                return
            backoff = min(
                self.respawn_backoff_s * 2 ** (slot.crashes - 1),
                self.respawn_backoff_max_s,
            )
            if backoff > 0:
                await asyncio.sleep(backoff)
            if self._draining or self._stopped:
                return
            slot.process = self._spawn(slot.shard)
            try:
                await self._wait_ready(slot)
            except RuntimeError:
                # Died (or hung) while starting: make sure it is gone,
                # then account it as another crash on the next join.
                if slot.process is not None and slot.process.is_alive():
                    slot.process.kill()
                continue
            slot.respawns += 1

    async def serve(
        self, host: str = "127.0.0.1", port: int = 8765
    ) -> asyncio.AbstractServer:
        """Start the public TCP listener; returns the asyncio server."""
        await self.start()
        return await asyncio.start_server(self._handle_client, host, port)

    def begin_draining(self) -> None:
        """New requests now get ``busy``; forwarded streams keep running."""
        self._draining = True

    async def drain(self) -> None:
        """Drain and stop every worker; returns when all have exited.

        Cancels the supervisors first (a worker exiting from here on is
        shutdown, not a crash — nothing may respawn), sends SIGTERM
        (each worker finishes its in-flight streams and shuts its DSP
        pool down), waits, and escalates to SIGKILL only if a worker
        ignores the drain for 30 seconds.
        """
        self.begin_draining()
        for task in self._supervisors:
            task.cancel()
        if self._supervisors:
            await asyncio.gather(*self._supervisors, return_exceptions=True)
        self._supervisors = []
        loop = asyncio.get_running_loop()
        processes = [
            slot.process for slot in self._slots if slot.process is not None
        ]
        for process in processes:
            if process.is_alive():
                process.terminate()
        for process in processes:
            await loop.run_in_executor(None, process.join, 30.0)
        for process in processes:
            if process.is_alive():  # pragma: no cover - defensive
                process.kill()
                await loop.run_in_executor(None, process.join)

    async def stop(self) -> None:
        """Drain the workers and remove the socket directory."""
        if self._stopped:
            return
        self._stopped = True
        await self.drain()
        if self._socket_dir is not None:
            for shard in range(self.workers):
                try:
                    os.unlink(self.socket_path(shard))
                except OSError:
                    pass
            if self._owns_socket_dir:
                try:
                    os.rmdir(self._socket_dir)
                except OSError:
                    pass

    async def __aenter__(self) -> "ShardedAuthServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- per-connection routing ----------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Route one client connection's lines to the shard workers.

        Lazily opens one upstream connection per shard actually used by
        this client; a pump task per upstream forwards the worker's
        reply lines to the client **verbatim** (no decode/re-encode on
        the reply path — the workers' bytes are the contract).  The
        router remembers which request ids each shard still owes replies
        to (``outstanding``), so a worker crash turns into attributed,
        retriable ``unavailable`` errors instead of silence.
        """
        write_lock = asyncio.Lock()
        upstreams: dict[int, tuple[asyncio.StreamReader, asyncio.StreamWriter]] = {}
        pumps: list[asyncio.Task] = []
        #: Per shard, the request ids awaiting a terminal reply.
        outstanding: dict[int, dict[str, None]] = {}
        closing = [False]
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    await self._send(
                        writer,
                        write_lock,
                        ErrorReply(
                            "",
                            "bad-request",
                            "frame exceeds maximum line length",
                        ),
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    message = decode_message(line)
                except ProtocolError as error:
                    await self._send(
                        writer,
                        write_lock,
                        ErrorReply("", "bad-request", str(error)),
                    )
                    continue
                if isinstance(message, (StatsRequest, CalibrateRequest)):
                    # Fan out: every shard answers with its own view
                    # (stats counters / calibration evidence), tagged
                    # (shard, shards) so the client can collect the set.
                    for shard in range(self.workers):
                        await self._forward(
                            shard,
                            line,
                            message.request_id,
                            upstreams,
                            pumps,
                            outstanding,
                            writer,
                            write_lock,
                            closing,
                        )
                    continue
                if not isinstance(message, RangingRequest):
                    await self._send(
                        writer,
                        write_lock,
                        ErrorReply(
                            getattr(message, "request_id", ""),
                            "bad-request",
                            "only ranging_request messages are accepted",
                        ),
                    )
                    continue
                if self._draining:
                    await self._send(
                        writer,
                        write_lock,
                        ErrorReply(
                            message.request_id,
                            "busy",
                            "service is draining for shutdown; retry later",
                        ),
                    )
                    continue
                shard = shard_for_session(session_key(message), self.workers)
                forwarded = await self._forward(
                    shard,
                    line,
                    message.request_id,
                    upstreams,
                    pumps,
                    outstanding,
                    writer,
                    write_lock,
                    closing,
                )
                if (
                    forwarded
                    and self._faults is not None
                    and self._faults.take_kill_worker(shard)
                ):
                    process = self._slots[shard].process
                    if process is not None and process.is_alive():
                        process.kill()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Event-loop teardown (router exiting): clean up quietly.
            pass
        finally:
            # Client went away (or half-closed): tell the workers no
            # more requests are coming, let in-flight replies finish
            # pumping, then tear the connection down.
            closing[0] = True
            for _, upstream_writer in upstreams.values():
                try:
                    upstream_writer.write_eof()
                except (OSError, RuntimeError):
                    pass
            if pumps:
                await asyncio.gather(*pumps, return_exceptions=True)
            for _, upstream_writer in upstreams.values():
                upstream_writer.close()
            for _, upstream_writer in upstreams.values():
                try:
                    await upstream_writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError):
                    pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _forward(
        self,
        shard: int,
        line: bytes,
        request_id: str,
        upstreams: dict,
        pumps: list,
        outstanding: dict,
        client_writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        closing: list,
    ) -> bool:
        """Forward one request line to ``shard``; False = answered with
        a structured ``unavailable`` error instead (shard down)."""
        try:
            upstream = await self._upstream(
                shard,
                upstreams,
                pumps,
                outstanding,
                client_writer,
                write_lock,
                closing,
            )
        except _ShardUnavailable as error:
            await self._send(
                client_writer,
                write_lock,
                ErrorReply(request_id, "unavailable", str(error)),
            )
            return False
        outstanding.setdefault(shard, {})[request_id] = None
        try:
            upstream.write(line)
            await upstream.drain()
        except (ConnectionResetError, BrokenPipeError):
            # Worker died between open and write; the pump's EOF path
            # answers this (and any other) outstanding id.
            pass
        return True

    async def _upstream(
        self,
        shard: int,
        upstreams: dict,
        pumps: list,
        outstanding: dict,
        client_writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        closing: list,
    ) -> asyncio.StreamWriter:
        """This connection's upstream to ``shard``, opened on first use.

        If the slot's worker is dead, waits (bounded by
        ``respawn_wait_s``) for the supervisor to bring the replacement
        up; a slot whose circuit breaker is open, or that stays down past
        the wait budget, raises :class:`_ShardUnavailable` — the caller
        answers with a structured, retriable error.
        """
        entry = upstreams.get(shard)
        if entry is not None:
            return entry[1]
        slot = self._slots[shard]
        if slot.failed:
            raise _ShardUnavailable(
                f"shard {shard} is down "
                f"(crash-loop circuit breaker open after {slot.crashes} "
                f"crashes)"
            )
        if not slot.ready.is_set():
            try:
                await asyncio.wait_for(
                    slot.ready.wait(), self.respawn_wait_s
                )
            except asyncio.TimeoutError:
                raise _ShardUnavailable(
                    f"shard {shard} worker is down (respawn pending); "
                    f"retry"
                ) from None
            if slot.failed:  # breaker opened while we waited
                raise _ShardUnavailable(
                    f"shard {shard} is down (crash-loop circuit breaker "
                    f"open)"
                )
        try:
            upstream_reader, upstream_writer = (
                await asyncio.open_unix_connection(self.socket_path(shard))
            )
        except (FileNotFoundError, ConnectionRefusedError, OSError):
            raise _ShardUnavailable(
                f"shard {shard} worker is not accepting connections; retry"
            ) from None
        upstreams[shard] = (upstream_reader, upstream_writer)
        pumps.append(
            asyncio.get_running_loop().create_task(
                self._pump(
                    shard,
                    upstream_reader,
                    upstreams,
                    outstanding,
                    client_writer,
                    write_lock,
                    closing,
                )
            )
        )
        return upstream_writer

    @staticmethod
    def _note_reply(shard: int, line: bytes, outstanding: dict) -> None:
        """Retire the request id a terminal reply line settles.

        This peek is the only reply-path JSON parse, and it never feeds
        what gets forwarded — the client receives the worker's original
        bytes regardless.
        """
        try:
            payload = json.loads(line)
        except ValueError:
            return
        if not isinstance(payload, dict):
            return
        if payload.get("type") not in _TERMINAL_REPLY_TAGS:
            return
        request_id = payload.get("request_id")
        pending = outstanding.get(shard)
        if pending is not None and request_id in pending:
            del pending[request_id]

    async def _pump(
        self,
        shard: int,
        upstream_reader: asyncio.StreamReader,
        upstreams: dict,
        outstanding: dict,
        client_writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        closing: list,
    ) -> None:
        """Forward one worker's reply lines to the client, byte-for-byte."""
        while True:
            try:
                line = await upstream_reader.readline()
            except (ConnectionResetError, BrokenPipeError, OSError):
                # A SIGKILLed worker surfaces as ECONNRESET at least as
                # often as a clean EOF — both mean the same thing here:
                # the worker is gone.  Fall through to the crash path so
                # the dead upstream is evicted and outstanding ids are
                # answered, not silently orphaned.
                line = b""
            if not line:
                break
            self._note_reply(shard, line, outstanding)
            try:
                async with write_lock:
                    client_writer.write(line)
                    await client_writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                # The *client* went away; _handle_client's cleanup owns
                # the teardown, nothing left to attribute.
                return
        if closing[0] or self._draining:
            return
        # The worker hung up while the client is still talking — a
        # crash, not a drain.  Evict the dead upstream (the next request
        # for this shard reconnects to the respawned worker) and fail
        # every request this shard still owed a terminal reply with an
        # attributed, retriable error: deployment-pinned routing plus
        # per-(session, trial) determinism make the retry land on the
        # replacement worker with byte-identical decisions.
        entry = upstreams.pop(shard, None)
        if entry is not None:
            entry[1].close()
        lost = outstanding.pop(shard, {})
        for request_id in lost:
            try:
                await self._send(
                    client_writer,
                    write_lock,
                    ErrorReply(
                        request_id,
                        "unavailable",
                        f"shard {shard} worker exited mid-request; "
                        f"retry (no partial state survives)",
                    ),
                )
            except (ConnectionResetError, BrokenPipeError):
                return

    @staticmethod
    async def _send(
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        message: Message,
    ) -> None:
        data = (encode_message(message) + "\n").encode("utf-8")
        async with write_lock:
            writer.write(data)
            await writer.drain()
