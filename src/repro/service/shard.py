"""Shard-by-session front tier: N worker processes, one TCP endpoint.

:class:`ShardedAuthServer` multiplies the streaming service across CPU
cores the way a deployment would: it owns the public JSON-lines TCP
listener and routes every :class:`~repro.service.protocol.RangingRequest`
to one of N spawned worker processes, each running a full
:class:`~repro.service.AuthService` (event loop, scheduler, DSP executor)
behind a private unix-domain socket.

Routing is **by session, not by request**: the shard index is a stable
hash of the request's session key — ``(environment, distance_m, seed)``,
the triple that fixes a cell's entire RNG universe — so every round of
every request touching one session lands on the same worker, in every
process topology.  Two consequences:

* **Determinism / bit-identity** — a worker runs the identical stage
  functions on the identical per-session RNG streams as the
  single-process server (and as ``run_cell_spec``); which worker that is
  cannot matter, and the router never re-encodes reply payloads — it
  forwards the workers' raw JSON lines byte-for-byte — so the served
  bits are exactly the single-process bits at any ``--workers`` count.
* **Batch locality** — rounds of one session coalesce in one worker's
  scheduler instead of being sprayed thin across all of them.

The hash is :func:`hashlib.blake2b`, not the builtin ``hash`` (which is
salted per process and would route differently on every restart).

Shutdown is a coordinated drain: the router flips to answering new
requests with ``busy``, SIGTERMs the workers (each
:meth:`~repro.service.AuthService.drain`\\ s: in-flight streams finish,
the DSP pool closes), and waits for them to exit.  A worker that
receives SIGINT/SIGTERM directly (Ctrl-C hits the whole process group)
drains itself the same way.

Telemetry fans out: a :class:`~repro.service.protocol.StatsRequest` or
:class:`~repro.service.protocol.CalibrateRequest` is forwarded to
**all** workers, and each answers with its own reply carrying ``(shard,
shards)`` so the client knows when it has the full set — each shard
calibrates from the sessions routed to it.
"""

from __future__ import annotations

import asyncio
import hashlib
import multiprocessing
import os
import signal
import tempfile

from repro.service.protocol import (
    CalibrateRequest,
    ErrorReply,
    Message,
    ProtocolError,
    RangingRequest,
    StatsRequest,
    decode_message,
    encode_message,
)
from repro.service.server import AuthService

__all__ = ["ShardedAuthServer", "session_key", "shard_for_session"]


def session_key(request: RangingRequest) -> str:
    """The routing key of a request: its RNG-universe-defining triple.

    ``first_trial``/``rounds`` slice *within* a session and must not
    change routing — requests addressing disjoint slices of one cell
    still belong on one worker.  ``distance_m`` uses ``repr``, which is
    exact for floats, so distinct cells never alias.
    """
    return f"{request.environment}|{request.distance_m!r}|{request.seed}"


def shard_for_session(key: str, shards: int) -> int:
    """Stable shard index for a session key — identical in every process.

    blake2b rather than ``hash()``: the builtin is salted per interpreter
    (PYTHONHASHSEED), which would break routing stability across
    restarts and across the router/test processes.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards!r}")
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % shards


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------


def _shard_worker_main(
    socket_path: str,
    shard_index: int,
    shard_count: int,
    service_options: dict,
) -> None:
    """Entry point of one spawned shard worker (its own event loop)."""
    asyncio.run(
        _run_worker(socket_path, shard_index, shard_count, service_options)
    )


async def _run_worker(
    socket_path: str,
    shard_index: int,
    shard_count: int,
    service_options: dict,
) -> None:
    service = AuthService(
        shard_index=shard_index,
        shard_count=shard_count,
        **service_options,
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)
    async with service:
        server = await service.serve_unix(socket_path)
        try:
            await stop.wait()
            # Drain with the listener still open: streams in flight
            # finish; anything new gets a busy reply, not a dead socket.
            await service.drain()
        finally:
            server.close()
            await server.wait_closed()


# ----------------------------------------------------------------------
# Router
# ----------------------------------------------------------------------


class ShardedAuthServer:
    """TCP front tier routing sessions to shard worker processes.

    Parameters
    ----------
    workers:
        Number of shard worker processes (each a full
        :class:`~repro.service.AuthService`).
    socket_dir:
        Directory for the workers' unix sockets; a private temporary
        directory by default.
    service_options:
        Keyword arguments forwarded to every worker's ``AuthService``
        (``batch_size``, ``linger_ms``, ``queue_limit``, ``dsp_workers``,
        ``dsp_executor``, ``max_inflight_rounds``).  Must be picklable —
        they cross the spawn boundary.
    ready_timeout:
        Seconds to wait for each worker's socket to accept connections
        at :meth:`start` (spawned workers pay the package import once).

    Use as an async context manager, or ``start()`` … ``stop()``.
    """

    def __init__(
        self,
        workers: int,
        *,
        socket_dir: str | None = None,
        service_options: dict | None = None,
        ready_timeout: float = 60.0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        self.workers = workers
        self.service_options = dict(service_options or {})
        self.ready_timeout = ready_timeout
        self._socket_dir = socket_dir
        self._owns_socket_dir = socket_dir is None
        self._processes: list[multiprocessing.Process] = []
        self._draining = False
        self._stopped = False

    # -- lifecycle -----------------------------------------------------

    def socket_path(self, shard: int) -> str:
        assert self._socket_dir is not None, "start() first"
        return os.path.join(self._socket_dir, f"shard-{shard}.sock")

    async def start(self) -> None:
        """Spawn the worker processes and wait until all accept."""
        if self._processes:
            return
        if self._socket_dir is None:
            self._socket_dir = tempfile.mkdtemp(prefix="repro-shards-")
        context = multiprocessing.get_context("spawn")
        for shard in range(self.workers):
            process = context.Process(
                target=_shard_worker_main,
                args=(
                    self.socket_path(shard),
                    shard,
                    self.workers,
                    self.service_options,
                ),
                name=f"repro-shard-{shard}",
                daemon=False,
            )
            process.start()
            self._processes.append(process)
        await asyncio.gather(
            *(
                self._wait_ready(shard)
                for shard in range(self.workers)
            )
        )

    async def _wait_ready(self, shard: int) -> None:
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.ready_timeout
        path = self.socket_path(shard)
        while True:
            process = self._processes[shard]
            if not process.is_alive():
                raise RuntimeError(
                    f"shard worker {shard} exited during startup "
                    f"(exitcode {process.exitcode})"
                )
            try:
                reader, writer = await asyncio.open_unix_connection(path)
            except (FileNotFoundError, ConnectionRefusedError, OSError):
                if loop.time() >= deadline:
                    raise RuntimeError(
                        f"shard worker {shard} did not become ready "
                        f"within {self.ready_timeout:.0f}s"
                    ) from None
                await asyncio.sleep(0.05)
                continue
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            return

    async def serve(
        self, host: str = "127.0.0.1", port: int = 8765
    ) -> asyncio.AbstractServer:
        """Start the public TCP listener; returns the asyncio server."""
        await self.start()
        return await asyncio.start_server(self._handle_client, host, port)

    def begin_draining(self) -> None:
        """New requests now get ``busy``; forwarded streams keep running."""
        self._draining = True

    async def drain(self) -> None:
        """Drain and stop every worker; returns when all have exited.

        Sends SIGTERM (each worker finishes its in-flight streams and
        shuts its DSP pool down), waits, and escalates to SIGKILL only
        if a worker ignores the drain for 30 seconds.
        """
        self.begin_draining()
        loop = asyncio.get_running_loop()
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            await loop.run_in_executor(None, process.join, 30.0)
        for process in self._processes:
            if process.is_alive():  # pragma: no cover - defensive
                process.kill()
                await loop.run_in_executor(None, process.join)

    async def stop(self) -> None:
        """Drain the workers and remove the socket directory."""
        if self._stopped:
            return
        self._stopped = True
        await self.drain()
        if self._socket_dir is not None:
            for shard in range(self.workers):
                try:
                    os.unlink(self.socket_path(shard))
                except OSError:
                    pass
            if self._owns_socket_dir:
                try:
                    os.rmdir(self._socket_dir)
                except OSError:
                    pass

    async def __aenter__(self) -> "ShardedAuthServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- per-connection routing ----------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Route one client connection's lines to the shard workers.

        Lazily opens one upstream connection per shard actually used by
        this client; a pump task per upstream forwards the worker's
        reply lines to the client **verbatim** (no decode/re-encode on
        the reply path — the workers' bytes are the contract).
        """
        write_lock = asyncio.Lock()
        upstreams: dict[int, tuple[asyncio.StreamReader, asyncio.StreamWriter]] = {}
        pumps: list[asyncio.Task] = []
        closing = [False]
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    message = decode_message(line)
                except ProtocolError as error:
                    await self._send(
                        writer,
                        write_lock,
                        ErrorReply("", "bad-request", str(error)),
                    )
                    continue
                if isinstance(message, (StatsRequest, CalibrateRequest)):
                    # Fan out: every shard answers with its own view
                    # (stats counters / calibration evidence), tagged
                    # (shard, shards) so the client can collect the set.
                    for shard in range(self.workers):
                        upstream = await self._upstream(
                            shard, upstreams, pumps, writer, write_lock, closing
                        )
                        upstream.write(line)
                        await upstream.drain()
                    continue
                if not isinstance(message, RangingRequest):
                    await self._send(
                        writer,
                        write_lock,
                        ErrorReply(
                            getattr(message, "request_id", ""),
                            "bad-request",
                            "only ranging_request messages are accepted",
                        ),
                    )
                    continue
                if self._draining:
                    await self._send(
                        writer,
                        write_lock,
                        ErrorReply(
                            message.request_id,
                            "busy",
                            "service is draining for shutdown; retry later",
                        ),
                    )
                    continue
                shard = shard_for_session(session_key(message), self.workers)
                upstream = await self._upstream(
                    shard, upstreams, pumps, writer, write_lock, closing
                )
                upstream.write(line)
                await upstream.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Event-loop teardown (router exiting): clean up quietly.
            pass
        finally:
            # Client went away (or half-closed): tell the workers no
            # more requests are coming, let in-flight replies finish
            # pumping, then tear the connection down.
            closing[0] = True
            for _, upstream_writer in upstreams.values():
                try:
                    upstream_writer.write_eof()
                except (OSError, RuntimeError):
                    pass
            if pumps:
                await asyncio.gather(*pumps, return_exceptions=True)
            for _, upstream_writer in upstreams.values():
                upstream_writer.close()
            for _, upstream_writer in upstreams.values():
                try:
                    await upstream_writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError):
                    pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _upstream(
        self,
        shard: int,
        upstreams: dict,
        pumps: list,
        client_writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        closing: list,
    ) -> asyncio.StreamWriter:
        """This connection's upstream to ``shard``, opened on first use."""
        entry = upstreams.get(shard)
        if entry is not None:
            return entry[1]
        upstream_reader, upstream_writer = await asyncio.open_unix_connection(
            self.socket_path(shard)
        )
        upstreams[shard] = (upstream_reader, upstream_writer)
        pumps.append(
            asyncio.get_running_loop().create_task(
                self._pump(
                    shard, upstream_reader, client_writer, write_lock, closing
                )
            )
        )
        return upstream_writer

    async def _pump(
        self,
        shard: int,
        upstream_reader: asyncio.StreamReader,
        client_writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        closing: list,
    ) -> None:
        """Forward one worker's reply lines to the client, byte-for-byte."""
        try:
            while True:
                line = await upstream_reader.readline()
                if not line:
                    break
                async with write_lock:
                    client_writer.write(line)
                    await client_writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            return
        if closing[0] or self._draining:
            return
        # The worker hung up while the client is still talking — a
        # crash, not a drain.  An unattributed error fails every pending
        # request on the client (it cannot know which were lost).
        try:
            await self._send(
                client_writer,
                write_lock,
                ErrorReply(
                    "", "internal", f"shard {shard} connection lost"
                ),
            )
        except (ConnectionResetError, BrokenPipeError):
            pass

    @staticmethod
    async def _send(
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        message: Message,
    ) -> None:
        data = (encode_message(message) + "\n").encode("utf-8")
        async with write_lock:
            writer.write(data)
            await writer.drain()
