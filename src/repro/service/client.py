"""Async client for the streaming authentication service.

One :class:`AuthClient` wraps one JSON-lines TCP connection and supports
any number of **concurrent** requests over it: a single reader task
routes every incoming message to its request by ``request_id``, so
callers simply iterate their own stream:

    async with await AuthClient.connect(host, port) as client:
        async for message in client.request(distance_m=0.8, rounds=3):
            ...   # RoundDecision ×3, then RequestComplete

or collect the whole exchange in one await:

    served = await client.authenticate(distance_m=0.8, rounds=3)
    served.granted, served.rounds, served.complete
"""

from __future__ import annotations

import asyncio
import itertools
import os
from dataclasses import dataclass, field
from typing import AsyncIterator

from repro.service.protocol import (
    CalibrateReply,
    CalibrateRequest,
    ErrorReply,
    Message,
    ProtocolError,
    RangingRequest,
    RequestComplete,
    RoundDecision,
    StatsReply,
    StatsRequest,
    decode_message,
    encode_message,
)

__all__ = ["AuthClient", "ServedAuthentication", "ServiceError"]


class ServiceError(RuntimeError):
    """The server answered with an :class:`ErrorReply`."""

    def __init__(self, reply: ErrorReply) -> None:
        super().__init__(f"[{reply.code}] {reply.message}")
        self.reply = reply

    @property
    def code(self) -> str:
        return self.reply.code


@dataclass
class ServedAuthentication:
    """Everything one request streamed back, collected."""

    request: RangingRequest
    rounds: list[RoundDecision] = field(default_factory=list)
    complete: RequestComplete | None = None

    @property
    def granted(self) -> bool:
        return self.complete is not None and self.complete.granted


class AuthClient:
    """One connection to an :class:`~repro.service.AuthService` listener."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._pending: dict[str, asyncio.Queue[Message]] = {}
        self._ids = itertools.count()
        self._id_prefix = f"c{os.getpid():x}"
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    @classmethod
    async def connect(cls, host: str, port: int) -> "AuthClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    @classmethod
    async def connect_unix(cls, path: str) -> "AuthClient":
        """Connect to a unix-domain-socket listener (a shard worker)."""
        reader, writer = await asyncio.open_unix_connection(path)
        return cls(reader, writer)

    async def __aenter__(self) -> "AuthClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    def _next_request_id(self) -> str:
        return f"{self._id_prefix}-{next(self._ids)}"

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    # ------------------------------------------------------------------

    async def request(
        self,
        *,
        environment: str = "office",
        distance_m: float = 1.0,
        seed: int = 0,
        rounds: int = 1,
        first_trial: int = 0,
        threshold_m: float = 1.0,
        request_id: str | None = None,
    ) -> AsyncIterator[Message]:
        """Send one request; yield its replies as the server streams them.

        The iterator ends after :class:`RequestComplete`; an
        :class:`ErrorReply` raises :class:`ServiceError` instead.
        """
        if request_id is None:
            request_id = self._next_request_id()
        if request_id in self._pending:
            raise ValueError(f"request id {request_id!r} already in flight")
        message = RangingRequest(
            request_id=request_id,
            environment=environment,
            distance_m=distance_m,
            seed=seed,
            rounds=rounds,
            first_trial=first_trial,
            threshold_m=threshold_m,
        )
        queue: asyncio.Queue[Message] = asyncio.Queue()
        self._pending[request_id] = queue
        try:
            self._writer.write((encode_message(message) + "\n").encode())
            await self._writer.drain()
            while True:
                reply = await queue.get()
                if isinstance(reply, _ReaderFailed):
                    raise reply.error
                if isinstance(reply, ErrorReply):
                    raise ServiceError(reply)
                yield reply
                if isinstance(reply, RequestComplete):
                    return
        finally:
            self._pending.pop(request_id, None)

    async def stats(self) -> list[StatsReply]:
        """Fetch cumulative scheduler statistics, one reply per shard.

        The first reply's ``shards`` field says how many replies the
        server(s) will send; the list comes back sorted by shard index.
        A single-process server returns exactly one reply.
        """
        request_id = self._next_request_id()
        if request_id in self._pending:
            raise ValueError(f"request id {request_id!r} already in flight")
        queue: asyncio.Queue[Message] = asyncio.Queue()
        self._pending[request_id] = queue
        try:
            line = encode_message(StatsRequest(request_id=request_id))
            self._writer.write((line + "\n").encode())
            await self._writer.drain()
            replies: list[StatsReply] = []
            while True:
                reply = await queue.get()
                if isinstance(reply, _ReaderFailed):
                    raise reply.error
                if isinstance(reply, ErrorReply):
                    raise ServiceError(reply)
                if not isinstance(reply, StatsReply):
                    raise ProtocolError(
                        f"unexpected stats reply: {type(reply).__name__}"
                    )
                replies.append(reply)
                if len(replies) >= reply.shards:
                    return sorted(replies, key=lambda r: r.shard)
        finally:
            self._pending.pop(request_id, None)

    async def calibrate(
        self, environment: str = "office", target_frr_pct: float = 5.0
    ) -> list[CalibrateReply]:
        """Fetch the calibrated τ for an environment, one reply per shard.

        Each shard answers from the ranging evidence of the sessions
        routed to it (``source="measured"``), or the paper-implied σ
        prior before enough traffic has accrued (``source="prior"``);
        the list comes back sorted by shard index.
        """
        request_id = self._next_request_id()
        if request_id in self._pending:
            raise ValueError(f"request id {request_id!r} already in flight")
        queue: asyncio.Queue[Message] = asyncio.Queue()
        self._pending[request_id] = queue
        try:
            line = encode_message(
                CalibrateRequest(
                    request_id=request_id,
                    environment=environment,
                    target_frr_pct=target_frr_pct,
                )
            )
            self._writer.write((line + "\n").encode())
            await self._writer.drain()
            replies: list[CalibrateReply] = []
            while True:
                reply = await queue.get()
                if isinstance(reply, _ReaderFailed):
                    raise reply.error
                if isinstance(reply, ErrorReply):
                    raise ServiceError(reply)
                if not isinstance(reply, CalibrateReply):
                    raise ProtocolError(
                        f"unexpected calibrate reply: {type(reply).__name__}"
                    )
                replies.append(reply)
                if len(replies) >= reply.shards:
                    return sorted(replies, key=lambda r: r.shard)
        finally:
            self._pending.pop(request_id, None)

    async def authenticate(self, **request_fields) -> ServedAuthentication:
        """Run one request to completion and collect the full stream."""
        request_fields.setdefault("request_id", self._next_request_id())
        served = ServedAuthentication(
            request=RangingRequest(**request_fields)
        )
        async for message in self.request(**request_fields):
            if isinstance(message, RoundDecision):
                served.rounds.append(message)
            elif isinstance(message, RequestComplete):
                served.complete = message
        return served

    # ------------------------------------------------------------------

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    raise ConnectionError("server closed the connection")
                if not line.strip():
                    continue
                message = decode_message(line)
                request_id = getattr(message, "request_id", "")
                queue = self._pending.get(request_id)
                if queue is not None:
                    queue.put_nowait(message)
                elif not request_id:
                    # The server could not attribute its error to a
                    # request (undecodable line) — fail everyone.
                    raise ProtocolError(
                        f"unattributed server error: {message}"
                    )
                # Replies for already-finished requests are dropped.
        except asyncio.CancelledError:
            raise
        except Exception as error:
            failure = _ReaderFailed(error)
            for queue in self._pending.values():
                queue.put_nowait(failure)


@dataclass
class _ReaderFailed:
    """Sentinel routed to every pending request when the reader dies."""

    error: Exception
