"""Async client for the streaming authentication service.

One :class:`AuthClient` wraps one JSON-lines TCP connection and supports
any number of **concurrent** requests over it: a single reader task
routes every incoming message to its request by ``request_id``, so
callers simply iterate their own stream:

    async with await AuthClient.connect(host, port) as client:
        async for message in client.request(distance_m=0.8, rounds=3):
            ...   # RoundDecision ×3, then RequestComplete

or collect the whole exchange in one await:

    served = await client.authenticate(distance_m=0.8, rounds=3)
    served.granted, served.rounds, served.complete

Retries: :meth:`AuthClient.authenticate` takes a :class:`RetryPolicy`
and transparently re-issues the request on *retriable* failures —
``busy``/``timeout``/``unavailable`` error replies, connection loss, a
desynchronized reply stream, or a per-attempt timeout (which is what a
lost reply frame looks like from here).  The retry reuses the same
request id: the service derives every decision deterministically from
``(session, trial)`` and the sharded tier pins sessions to slots, so a
re-execution returns byte-identical decisions — retrying is idempotent
by construction.  Backoff is capped-exponential with *deterministic*
jitter (hashed from ``request_id:attempt``), so tests and chaos runs
replay exactly.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import os
from dataclasses import dataclass, field
from typing import AsyncIterator, Awaitable, Callable

from repro.service.protocol import (
    CalibrateReply,
    CalibrateRequest,
    ErrorReply,
    Message,
    ProtocolError,
    RangingRequest,
    RequestComplete,
    RoundDecision,
    StatsReply,
    StatsRequest,
    decode_message,
    encode_message,
)

__all__ = [
    "AuthClient",
    "RetryPolicy",
    "ServedAuthentication",
    "ServiceError",
]


class ServiceError(RuntimeError):
    """The server answered with an :class:`ErrorReply`.

    ``attempts`` is stamped on the instance by the retrying
    :meth:`AuthClient.authenticate` before the final raise.
    """

    def __init__(self, reply: ErrorReply) -> None:
        super().__init__(f"[{reply.code}] {reply.message}")
        self.reply = reply

    @property
    def code(self) -> str:
        return self.reply.code

    @property
    def retriable(self) -> bool:
        return self.reply.retriable


@dataclass(frozen=True)
class RetryPolicy:
    """Client retry budget: capped exponential backoff, deterministic jitter.

    Attempt ``N`` (1-based) that fails retriably sleeps
    ``min(base_backoff_s * 2**(N-1), max_backoff_s)`` scaled by up to
    ``jitter`` — the jitter fraction is hashed from
    ``"request_id:attempt"``, not drawn from an RNG, so identical runs
    back off identically (determinism survives the failure path).

    ``attempt_timeout_s`` bounds one attempt end-to-end.  It is the only
    defense that catches a *silently lost* reply frame (nothing arrives,
    so no error does either): the attempt times out, the retry re-issues
    the request, and idempotency-by-request-id makes that safe.
    ``None`` disables the per-attempt bound.
    """

    attempts: int = 4
    base_backoff_s: float = 0.05
    max_backoff_s: float = 2.0
    jitter: float = 0.5
    attempt_timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts!r}")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff values must be >= 0")
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter!r}")
        if self.attempt_timeout_s is not None and self.attempt_timeout_s <= 0:
            raise ValueError(
                f"attempt_timeout_s must be > 0, got {self.attempt_timeout_s!r}"
            )

    def backoff_s(self, request_id: str, attempt: int) -> float:
        """Seconds to sleep after failed attempt ``attempt`` (1-based)."""
        base = min(
            self.base_backoff_s * 2 ** (attempt - 1), self.max_backoff_s
        )
        if self.jitter <= 0 or base <= 0:
            return base
        digest = hashlib.blake2b(
            f"{request_id}:{attempt}".encode("utf-8"), digest_size=8
        ).digest()
        fraction = int.from_bytes(digest, "big") / 2.0**64
        return base * (1.0 + self.jitter * fraction)


@dataclass
class ServedAuthentication:
    """Everything one request streamed back, collected."""

    request: RangingRequest
    rounds: list[RoundDecision] = field(default_factory=list)
    complete: RequestComplete | None = None
    #: How many attempts :meth:`AuthClient.authenticate` spent (1 = no
    #: retry was needed).
    attempts: int = 1

    @property
    def granted(self) -> bool:
        return self.complete is not None and self.complete.granted


class AuthClient:
    """One connection to an :class:`~repro.service.AuthService` listener."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        reconnect: Callable[
            [], Awaitable[tuple[asyncio.StreamReader, asyncio.StreamWriter]]
        ]
        | None = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        #: Re-dials the same endpoint after connection loss; installed by
        #: the ``connect*`` constructors.  Without it a broken client
        #: stays broken (retries surface the connection error).
        self._reconnect_factory = reconnect
        self._pending: dict[str, asyncio.Queue[Message]] = {}
        self._ids = itertools.count()
        self._id_prefix = f"c{os.getpid():x}"
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    @classmethod
    async def connect(cls, host: str, port: int) -> "AuthClient":
        reader, writer = await asyncio.open_connection(host, port)

        async def redial():
            return await asyncio.open_connection(host, port)

        return cls(reader, writer, reconnect=redial)

    @classmethod
    async def connect_unix(cls, path: str) -> "AuthClient":
        """Connect to a unix-domain-socket listener (a shard worker)."""
        reader, writer = await asyncio.open_unix_connection(path)

        async def redial():
            return await asyncio.open_unix_connection(path)

        return cls(reader, writer, reconnect=redial)

    async def __aenter__(self) -> "AuthClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    def _next_request_id(self) -> str:
        return f"{self._id_prefix}-{next(self._ids)}"

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    # ------------------------------------------------------------------

    async def request(
        self,
        *,
        environment: str = "office",
        distance_m: float = 1.0,
        seed: int = 0,
        rounds: int = 1,
        first_trial: int = 0,
        threshold_m: float = 1.0,
        deadline_ms: float = 0.0,
        request_id: str | None = None,
    ) -> AsyncIterator[Message]:
        """Send one request; yield its replies as the server streams them.

        The iterator ends after :class:`RequestComplete`; an
        :class:`ErrorReply` raises :class:`ServiceError` instead.
        ``deadline_ms`` > 0 asks the server to fail the request closed
        (a ``timeout`` error, never a grant) rather than start rounds
        after that budget.
        """
        if request_id is None:
            request_id = self._next_request_id()
        if request_id in self._pending:
            raise ValueError(f"request id {request_id!r} already in flight")
        message = RangingRequest(
            request_id=request_id,
            environment=environment,
            distance_m=distance_m,
            seed=seed,
            rounds=rounds,
            first_trial=first_trial,
            threshold_m=threshold_m,
            deadline_ms=deadline_ms,
        )
        queue: asyncio.Queue[Message] = asyncio.Queue()
        self._pending[request_id] = queue
        try:
            self._writer.write((encode_message(message) + "\n").encode())
            await self._writer.drain()
            while True:
                reply = await queue.get()
                if isinstance(reply, _ReaderFailed):
                    raise reply.error
                if isinstance(reply, ErrorReply):
                    raise ServiceError(reply)
                yield reply
                if isinstance(reply, RequestComplete):
                    return
        finally:
            self._pending.pop(request_id, None)

    async def stats(self) -> list[StatsReply]:
        """Fetch cumulative scheduler statistics, one reply per shard.

        The first reply's ``shards`` field says how many replies the
        server(s) will send; the list comes back sorted by shard index.
        A single-process server returns exactly one reply.
        """
        request_id = self._next_request_id()
        if request_id in self._pending:
            raise ValueError(f"request id {request_id!r} already in flight")
        queue: asyncio.Queue[Message] = asyncio.Queue()
        self._pending[request_id] = queue
        try:
            line = encode_message(StatsRequest(request_id=request_id))
            self._writer.write((line + "\n").encode())
            await self._writer.drain()
            replies: list[StatsReply] = []
            while True:
                reply = await queue.get()
                if isinstance(reply, _ReaderFailed):
                    raise reply.error
                if isinstance(reply, ErrorReply):
                    raise ServiceError(reply)
                if not isinstance(reply, StatsReply):
                    raise ProtocolError(
                        f"unexpected stats reply: {type(reply).__name__}"
                    )
                replies.append(reply)
                if len(replies) >= reply.shards:
                    return sorted(replies, key=lambda r: r.shard)
        finally:
            self._pending.pop(request_id, None)

    async def calibrate(
        self, environment: str = "office", target_frr_pct: float = 5.0
    ) -> list[CalibrateReply]:
        """Fetch the calibrated τ for an environment, one reply per shard.

        Each shard answers from the ranging evidence of the sessions
        routed to it (``source="measured"``), or the paper-implied σ
        prior before enough traffic has accrued (``source="prior"``);
        the list comes back sorted by shard index.
        """
        request_id = self._next_request_id()
        if request_id in self._pending:
            raise ValueError(f"request id {request_id!r} already in flight")
        queue: asyncio.Queue[Message] = asyncio.Queue()
        self._pending[request_id] = queue
        try:
            line = encode_message(
                CalibrateRequest(
                    request_id=request_id,
                    environment=environment,
                    target_frr_pct=target_frr_pct,
                )
            )
            self._writer.write((line + "\n").encode())
            await self._writer.drain()
            replies: list[CalibrateReply] = []
            while True:
                reply = await queue.get()
                if isinstance(reply, _ReaderFailed):
                    raise reply.error
                if isinstance(reply, ErrorReply):
                    raise ServiceError(reply)
                if not isinstance(reply, CalibrateReply):
                    raise ProtocolError(
                        f"unexpected calibrate reply: {type(reply).__name__}"
                    )
                replies.append(reply)
                if len(replies) >= reply.shards:
                    return sorted(replies, key=lambda r: r.shard)
        finally:
            self._pending.pop(request_id, None)

    async def authenticate(
        self, *, retry: RetryPolicy | None = None, **request_fields
    ) -> ServedAuthentication:
        """Run one request to completion and collect the full stream.

        With a :class:`RetryPolicy`, retriable failures — ``busy`` /
        ``timeout`` / ``unavailable`` error replies, connection loss, a
        dead reply stream, or a per-attempt timeout — are retried with
        capped, deterministically-jittered backoff, reconnecting first
        when the transport broke.  The same request id is reused on
        every attempt (retrying is idempotent: the service recomputes
        the identical decisions).  The exception that exhausts the
        budget is re-raised with an ``attempts`` attribute stamped on
        it; a successful result carries ``attempts`` too.
        """
        request_fields.setdefault("request_id", self._next_request_id())
        policy = retry or RetryPolicy(attempts=1)
        request_id = request_fields["request_id"]
        attempt = 0
        while True:
            attempt += 1
            try:
                await self._ensure_connection()
                if policy.attempt_timeout_s is not None:
                    served = await asyncio.wait_for(
                        self._authenticate_once(request_fields),
                        policy.attempt_timeout_s,
                    )
                else:
                    served = await self._authenticate_once(request_fields)
                served.attempts = attempt
                return served
            except (
                ServiceError,
                ProtocolError,
                asyncio.TimeoutError,
                OSError,
            ) as error:
                retriable = (
                    error.retriable
                    if isinstance(error, ServiceError)
                    else True
                )
                if not retriable or attempt >= policy.attempts:
                    error.attempts = attempt
                    raise
            await asyncio.sleep(policy.backoff_s(request_id, attempt))

    async def _authenticate_once(
        self, request_fields: dict
    ) -> ServedAuthentication:
        """One attempt: issue the request and collect its whole stream.

        Rounds are collected by round index rather than appended: if a
        previous attempt's stream was cut mid-flight, a straggler reply
        for the same (reused) request id may still arrive — decisions
        are byte-identical across attempts, so keying by index absorbs
        the duplicate instead of double-counting it.
        """
        served = ServedAuthentication(
            request=RangingRequest(**request_fields)
        )
        rounds: dict[int, RoundDecision] = {}
        async for message in self.request(**request_fields):
            if isinstance(message, RoundDecision):
                rounds[message.round_index] = message
            elif isinstance(message, RequestComplete):
                served.complete = message
        served.rounds = [rounds[index] for index in sorted(rounds)]
        return served

    async def _ensure_connection(self) -> None:
        """Redial if the transport is dead; no-op while it is healthy.

        The reader task exiting (server EOF, a desynchronized frame) or
        a closing writer makes every further request fail, so retries
        call this first.  Without a reconnect factory (caller handed in
        raw streams) the client surfaces a :class:`ConnectionError`
        instead — the retry loop then re-raises it once the budget is
        spent.
        """
        broken = self._reader_task.done() or self._writer.is_closing()
        if not broken:
            return
        if self._reconnect_factory is None:
            raise ConnectionError(
                "connection is broken and this client cannot redial"
            )
        await self.close()
        self._reader, self._writer = await self._reconnect_factory()
        self._pending = {}
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    # ------------------------------------------------------------------

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    raise ConnectionError("server closed the connection")
                if not line.strip():
                    continue
                message = decode_message(line)
                request_id = getattr(message, "request_id", "")
                queue = self._pending.get(request_id)
                if queue is not None:
                    queue.put_nowait(message)
                elif not request_id:
                    # The server could not attribute its error to a
                    # request (undecodable line) — fail everyone.
                    raise ProtocolError(
                        f"unattributed server error: {message}"
                    )
                # Replies for already-finished requests are dropped.
        except asyncio.CancelledError:
            raise
        except Exception as error:
            failure = _ReaderFailed(error)
            for queue in self._pending.values():
                queue.put_nowait(failure)


@dataclass
class _ReaderFailed:
    """Sentinel routed to every pending request when the reader dies."""

    error: Exception
