"""Deterministic fault injection for the serving tier.

Production failure modes — a SIGKILLed shard worker, a wedged DSP batch,
a lost or corrupted reply frame, a transient ``busy`` bounce — are
ordinarily timing accidents, which makes them miserable to test.  This
module turns each of them into **data**: a :class:`FaultPlan` is a
frozen, picklable description of *exactly which* fault fires *exactly
when*, counted in deterministic units (requests routed, batches
dispatched, frames sent) rather than wall-clock time.  The same plan
therefore produces the same failure schedule on every run, so ordinary
pytest tests — and the gating ``tools/chaos_smoke.py`` — can exercise
every recovery path in the serving tier.

Where each fault kind is consumed:

* :class:`KillWorker` — the shard router
  (:class:`~repro.service.shard.ShardedAuthServer`) SIGKILLs worker
  ``shard`` immediately after forwarding it its ``after_requests``-th
  ranging request.  Exercises worker supervision: pump EOF → structured
  retriable errors for that shard's in-flight requests → supervised
  respawn with backoff → retries land on the respawned worker.
* :class:`DelayBatch` — the :class:`~repro.service.scheduler.BatchingScheduler`
  sleeps ``delay_ms`` before *admitting* its ``batch_index``-th batch
  (never mid-batch), which is how deadline expiry is exercised
  deterministically.
* :class:`FrameFault` — the worker's
  :class:`~repro.service.AuthService` drops or truncates its
  ``frame_index``-th outgoing reply frame, exercising client-side
  attempt timeouts, reconnect, and retry.
* :class:`BusyOnce` — the service answers its ``request_index``-th
  ranging request with a single ``busy`` error (the request is never
  executed), exercising client retry on backpressure.

The safety invariant all of this exists to test: **under any injected
fault schedule, the set of granted sessions is a subset of the unfaulted
run's, and every decision that does complete is bit-identical to the
unfaulted run** — faults may delay or deny, never grant differently
(fail closed).

A :class:`FaultPlan` is immutable shared data; each process that
consumes it wraps it in its own :class:`FaultInjector`, which holds the
mutable counters.  The plan crosses the spawn boundary to shard workers
via ``service_options`` (it pickles), and each worker counts its own
batches and frames.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "BusyOnce",
    "DelayBatch",
    "FaultInjector",
    "FaultPlan",
    "FrameFault",
    "KillWorker",
]


@dataclass(frozen=True)
class KillWorker:
    """SIGKILL worker ``shard`` after routing it ``after_requests`` requests.

    ``after_requests`` counts ranging requests the router forwarded to
    that shard (1-based: ``after_requests=2`` kills right after the
    second forward).  Stats/calibrate fan-out traffic is not counted.
    """

    shard: int
    after_requests: int = 1


@dataclass(frozen=True)
class DelayBatch:
    """Delay the scheduler's ``batch_index``-th dispatched batch.

    ``batch_index`` is 0-based over batches the collector picks up.  The
    delay is applied **before admission** — pending rounds whose
    deadline lapses during the delay expire with a structured timeout,
    and the rounds that do get admitted run as one normal batch.
    """

    batch_index: int
    delay_ms: float


@dataclass(frozen=True)
class FrameFault:
    """Drop or truncate the service's ``frame_index``-th outgoing frame.

    ``frame_index`` is 0-based over every reply frame the
    :class:`~repro.service.AuthService` writes (all connections, in send
    order).  ``mode="drop"`` suppresses the frame entirely;
    ``mode="truncate"`` writes only the first half of its bytes (still
    newline-terminated), producing a malformed JSON line on the wire.
    """

    frame_index: int
    mode: str = "drop"

    def __post_init__(self) -> None:
        if self.mode not in ("drop", "truncate"):
            raise ValueError(
                f"mode must be 'drop' or 'truncate', got {self.mode!r}"
            )


@dataclass(frozen=True)
class BusyOnce:
    """Bounce the service's ``request_index``-th ranging request with busy.

    0-based over ranging requests the service accepts for execution;
    the bounced request performs no work (nothing is partially
    executed), exactly like a real backpressure rejection.
    """

    request_index: int = 0


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected faults (immutable, picklable).

    Empty tuples everywhere mean "no faults" — the serving tier treats a
    ``None`` plan and an empty plan identically.
    """

    kill_workers: tuple[KillWorker, ...] = ()
    delay_batches: tuple[DelayBatch, ...] = ()
    frame_faults: tuple[FrameFault, ...] = ()
    busy_once: tuple[BusyOnce, ...] = ()

    @property
    def empty(self) -> bool:
        return not (
            self.kill_workers
            or self.delay_batches
            or self.frame_faults
            or self.busy_once
        )

    @property
    def has_worker_faults(self) -> bool:
        """Whether any fault kind is consumed inside a worker process."""
        return bool(
            self.delay_batches or self.frame_faults or self.busy_once
        )


@dataclass
class FaultInjector:
    """Per-process runtime of a :class:`FaultPlan`: plan + mutable counters.

    Each consuming component calls exactly one ``take_*`` method per
    countable event; a fault fires at most once.  Counters are plain
    ints advanced on the (single-threaded) event loop, so a fixed
    request order yields a fixed fault schedule.
    """

    plan: FaultPlan
    _routed: dict[int, int] = field(default_factory=dict)
    _batches: int = 0
    _frames: int = 0
    _requests: int = 0
    _fired: set = field(default_factory=set)

    def _fire_once(self, fault) -> bool:
        if fault in self._fired:
            return False
        self._fired.add(fault)
        return True

    def take_kill_worker(self, shard: int) -> bool:
        """Router hook: count one forwarded request; True = kill now."""
        count = self._routed.get(shard, 0) + 1
        self._routed[shard] = count
        for fault in self.plan.kill_workers:
            if fault.shard == shard and fault.after_requests == count:
                return self._fire_once(fault)
        return False

    def take_batch_delay_s(self) -> float:
        """Scheduler hook: count one batch; seconds to stall its admission."""
        index = self._batches
        self._batches += 1
        delay = 0.0
        for fault in self.plan.delay_batches:
            if fault.batch_index == index and self._fire_once(fault):
                delay += fault.delay_ms / 1000.0
        return delay

    def take_frame_fault(self) -> str | None:
        """Server send hook: count one frame; ``"drop"``/``"truncate"``/None."""
        index = self._frames
        self._frames += 1
        for fault in self.plan.frame_faults:
            if fault.frame_index == index and self._fire_once(fault):
                return fault.mode
        return None

    def take_busy(self) -> bool:
        """Server accept hook: count one ranging request; True = bounce it."""
        index = self._requests
        self._requests += 1
        for fault in self.plan.busy_once:
            if fault.request_index == index and self._fire_once(fault):
                return True
        return False
