"""Load generation against a running authentication service.

Two arrival disciplines, both driving the JSON-lines TCP endpoint the
way real callers would (over :class:`~repro.service.AuthClient`
connections, many requests multiplexed per connection):

* **closed loop** — a fixed number of concurrent virtual clients, each
  issuing its next request the moment the previous one completes.
  Measures sustained capacity: the service is always saturated at
  exactly ``concurrency`` in-flight requests.
* **open loop** — requests arrive on a Poisson process at a target rate
  regardless of how fast the service answers.  Latency is measured from
  each request's *scheduled* arrival time, not from when the generator
  got around to sending it — the standard guard against coordinated
  omission, where a stalled service would otherwise pause the generator
  and hide its own worst latencies.

Requests cycle through a pool of ``sessions`` distinct (seed-varied)
cells so a sharded server (``--workers N``) sees traffic across all its
shards, and ``first_trial`` advances per request so repeated visits to
one session address fresh trials (each request stays bit-identical to
its engine trial regardless).

The warmup prefix is excluded from the report; after the run the
generator asks the server for its cumulative scheduler statistics
(:meth:`~repro.service.AuthClient.stats`) and attaches one entry per
shard.  :func:`run_loadgen` is the library entry point —
``tools/loadgen.py`` is its CLI, and the scaling benchmark
(``benchmarks/bench_pipeline.py --service-scaled``) calls it once per
worker count.
"""

from __future__ import annotations

import asyncio
import math
import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.service.client import AuthClient, RetryPolicy, ServiceError

__all__ = [
    "LoadgenReport",
    "RequestCycler",
    "RequestSample",
    "request_mix_from_corpus",
    "request_mix_from_scenario",
    "run_loadgen",
]

#: Arrival disciplines understood by :func:`run_loadgen`.
LOADGEN_MODES = ("closed", "open")


@dataclass(frozen=True)
class RequestSample:
    """One request's timing, on the event-loop clock (seconds).

    ``scheduled_s`` is the intended arrival time — equal to
    ``started_s`` in closed-loop mode, the Poisson arrival point in
    open-loop mode (latency is ``finished_s - scheduled_s`` there).
    """

    scheduled_s: float
    started_s: float
    finished_s: float
    outcome: str  # "ok" | "busy" | "timeout" | "error" | "failed"
    rounds: int
    #: Attempts the client spent (1 = first try sufficed; > 1 = retried).
    attempts: int = 1

    @property
    def latency_s(self) -> float:
        return self.finished_s - self.scheduled_s

    @property
    def retried(self) -> bool:
        return self.attempts > 1


@dataclass
class LoadgenReport:
    """What one load-generation run measured (post-warmup window only)."""

    mode: str
    concurrency: int
    rate_rps: float | None
    duration_s: float
    warmup_s: float
    rounds_per_request: int
    sessions: int
    requests: int = 0
    ok: int = 0
    busy: int = 0
    #: Requests that exhausted their budget on a structured ``timeout``.
    timeout: int = 0
    #: Requests ending in any other structured error reply
    #: (``unavailable`` past the retry budget, ``internal-error``, ...).
    error: int = 0
    #: Requests ending in transport failure (no structured reply at all).
    failed: int = 0
    #: Requests (any outcome) that needed more than one attempt — the
    #: measure of how much self-healing the run exercised.
    retried: int = 0
    rounds: int = 0
    measured_s: float = 0.0
    requests_per_s: float = 0.0
    rounds_per_s: float = 0.0
    #: Latency of ok requests as experienced (retry-inflated: backoff
    #: and re-execution included).
    latency_ms: dict[str, float] = field(default_factory=dict)
    #: Latency of ok requests that succeeded on their first attempt —
    #: the service's intrinsic latency, separated so chaos runs can
    #: compare it against the retry-inflated figure above.
    first_attempt_latency_ms: dict[str, float] = field(default_factory=dict)
    #: One entry per shard, from the server's ``stats_reply`` messages.
    scheduler_stats: list[dict] | None = None

    def to_json(self) -> dict:
        return {
            "mode": self.mode,
            "concurrency": self.concurrency,
            "rate_rps": self.rate_rps,
            "duration_s": self.duration_s,
            "warmup_s": self.warmup_s,
            "rounds_per_request": self.rounds_per_request,
            "sessions": self.sessions,
            "requests": self.requests,
            "ok": self.ok,
            "busy": self.busy,
            "timeout": self.timeout,
            "error": self.error,
            "failed": self.failed,
            "retried": self.retried,
            "rounds": self.rounds,
            "measured_s": round(self.measured_s, 4),
            "requests_per_s": round(self.requests_per_s, 3),
            "rounds_per_s": round(self.rounds_per_s, 3),
            "latency_ms": {
                key: round(value, 3)
                for key, value in self.latency_ms.items()
            },
            "first_attempt_latency_ms": {
                key: round(value, 3)
                for key, value in self.first_attempt_latency_ms.items()
            },
            "scheduler_stats": self.scheduler_stats,
        }


class RequestCycler:
    """Round-robin over a request mix, advancing trials per revisit.

    Each mix item describes one session identity — ``environment``,
    ``distance_m``, ``seed``, ``rounds`` — and consecutive requests cycle
    the pool so a sharded server sees traffic on every shard.  When the
    cycle returns to an item, ``first_trial`` has advanced by that item's
    ``rounds``, so repeated visits address fresh trials while every
    individual request stays bit-identical to its engine trial.
    """

    def __init__(self, mix: Sequence[dict]) -> None:
        if not mix:
            raise ValueError("request mix must not be empty")
        self.mix = [dict(item) for item in mix]
        self.counter = 0

    @classmethod
    def uniform(
        cls,
        environment: str,
        distance_m: float,
        seed_base: int,
        sessions: int,
        rounds: int,
    ) -> "RequestCycler":
        """The default mix: one cell, ``sessions`` seed-varied identities."""
        return cls(
            [
                {
                    "environment": environment,
                    "distance_m": distance_m,
                    "seed": seed_base + session,
                    "rounds": rounds,
                }
                for session in range(sessions)
            ]
        )

    def __len__(self) -> int:
        return len(self.mix)

    def next(self) -> dict:
        """Request fields for the next arrival (excluding policy knobs)."""
        index = self.counter
        self.counter += 1
        item = self.mix[index % len(self.mix)]
        return {
            "environment": item["environment"],
            "distance_m": item["distance_m"],
            "seed": item["seed"],
            "rounds": item["rounds"],
            "first_trial": (index // len(self.mix)) * item["rounds"],
        }


def request_mix_from_corpus(
    root: str, rounds: int | None = None
) -> list[dict]:
    """A request mix replaying a capture corpus's cells as live traffic.

    Each servable corpus entry becomes one mix item carrying the
    recorded cell's environment, distance, and seed — so the service
    computes the very trials the corpus recorded, decision-for-decision
    (the service and the recorder share one session construction path).
    Servable means reconstructible, preset-environment, default-config:
    the request schema names environments by preset and carries no config
    override.  ``rounds`` caps rounds per request (default: each entry's
    full trial count).
    """
    from repro.corpus import CaptureCorpus

    corpus = CaptureCorpus(root, create=False)
    mix: list[dict] = []
    for fingerprint in corpus.fingerprints():
        manifest = corpus.read_manifest(fingerprint)
        spec = manifest.get("spec")
        if spec is None:
            continue
        environment = spec.get("environment")
        if not isinstance(environment, dict) or "preset" not in environment:
            continue
        if spec.get("config") is not None:
            continue
        mix.append(
            {
                "environment": environment["preset"],
                "distance_m": manifest["distance_m"],
                "seed": manifest["seed"],
                "rounds": rounds or manifest["n_trials"],
            }
        )
    if not mix:
        raise ValueError(
            f"corpus at {root} has no servable entries (preset "
            "environment, default config) — record one with "
            "`repro capture` at the paper profile"
        )
    return mix


def request_mix_from_scenario(
    scenario, rounds: int | None = None
) -> list[dict]:
    """A request mix serving a compiled scenario's cells as live traffic.

    ``scenario`` is a :class:`repro.scenarios.CompiledScenario`, a
    :class:`repro.scenarios.ScenarioDoc`, a builtin scenario name, or a
    path to a scenario document file.  Only the scenario's *servable*
    cells (preset environment, no walls or interference — see
    :class:`repro.scenarios.CompiledCell`) become mix items; raises if
    the scenario has none.  ``rounds`` caps rounds per request (default:
    each cell's trial count).
    """
    from repro.scenarios import (
        BUILTIN_SCENARIOS,
        CompiledScenario,
        ScenarioDoc,
        compile_scenario,
        load_scenario,
    )

    if isinstance(scenario, str):
        if scenario in BUILTIN_SCENARIOS:
            scenario = BUILTIN_SCENARIOS[scenario]
        else:
            scenario = load_scenario(scenario)
    if isinstance(scenario, ScenarioDoc):
        scenario = compile_scenario(scenario)
    if not isinstance(scenario, CompiledScenario):
        raise TypeError(
            "scenario must be a CompiledScenario, ScenarioDoc, builtin "
            f"name, or document path, got {type(scenario).__name__}"
        )
    return scenario.request_mix(rounds=rounds)


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile over pre-sorted values.

    True nearest-rank: the smallest value with at least ``fraction`` of
    the sample at or below it — ``sorted_values[ceil(fraction · n) − 1]``.
    (The earlier ``round(fraction · (n − 1))`` drifted on .5 ties under
    banker's rounding: p50 of 4 samples rounded 1.5 *down* to index 2's
    neighbor, overstating small-sample medians.)
    """
    if not sorted_values:
        return 0.0
    rank = math.ceil(fraction * len(sorted_values))
    rank = max(1, min(len(sorted_values), rank))
    return sorted_values[rank - 1]


def summarize(
    samples: Sequence[RequestSample], report: LoadgenReport, warmup_end_s: float
) -> LoadgenReport:
    """Fold samples scheduled after warmup into ``report`` (in place)."""
    measured = [s for s in samples if s.scheduled_s >= warmup_end_s]
    report.requests = len(measured)
    report.ok = sum(1 for s in measured if s.outcome == "ok")
    report.busy = sum(1 for s in measured if s.outcome == "busy")
    report.timeout = sum(1 for s in measured if s.outcome == "timeout")
    report.error = sum(1 for s in measured if s.outcome == "error")
    report.failed = sum(1 for s in measured if s.outcome == "failed")
    report.retried = sum(1 for s in measured if s.retried)
    report.rounds = sum(s.rounds for s in measured)
    if measured:
        span_start = min(s.scheduled_s for s in measured)
        span_end = max(s.finished_s for s in measured)
        report.measured_s = max(span_end - span_start, 1e-9)
        report.requests_per_s = report.requests / report.measured_s
        report.rounds_per_s = report.rounds / report.measured_s

        def digest(latencies: list[float]) -> dict[str, float]:
            return {
                "p50": 1e3 * _percentile(latencies, 0.50),
                "p95": 1e3 * _percentile(latencies, 0.95),
                "p99": 1e3 * _percentile(latencies, 0.99),
                "mean": 1e3 * sum(latencies) / len(latencies),
                "max": 1e3 * latencies[-1],
            }

        latencies = sorted(s.latency_s for s in measured if s.outcome == "ok")
        if latencies:
            report.latency_ms = digest(latencies)
        first_attempt = sorted(
            s.latency_s
            for s in measured
            if s.outcome == "ok" and not s.retried
        )
        if first_attempt:
            report.first_attempt_latency_ms = digest(first_attempt)
    return report


async def _issue(
    client: AuthClient,
    *,
    scheduled_s: float,
    environment: str,
    distance_m: float,
    seed: int,
    rounds: int,
    first_trial: int,
    threshold_m: float,
    deadline_ms: float,
    retry: RetryPolicy | None,
    samples: list[RequestSample],
) -> None:
    """Send one request, await its stream, and record the sample.

    Outcome classes: ``ok`` (grant/deny decided), ``busy`` / ``timeout``
    (structured backpressure / deadline replies surviving the retry
    budget), ``error`` (any other structured error reply), ``failed``
    (transport-level loss — no structured reply at all).  ``attempts``
    counts what the retry budget spent either way.
    """
    loop = asyncio.get_running_loop()
    started = loop.time()
    outcome, served_rounds, attempts = "ok", 0, 1
    try:
        served = await client.authenticate(
            retry=retry,
            environment=environment,
            distance_m=distance_m,
            seed=seed,
            rounds=rounds,
            first_trial=first_trial,
            threshold_m=threshold_m,
            deadline_ms=deadline_ms,
        )
        served_rounds = len(served.rounds)
        attempts = served.attempts
    except ServiceError as error:
        attempts = getattr(error, "attempts", 1)
        if error.code in ("busy", "timeout"):
            outcome = error.code
        else:
            outcome = "error"
    except (ConnectionError, OSError) as error:
        attempts = getattr(error, "attempts", 1)
        outcome = "failed"
    samples.append(
        RequestSample(
            scheduled_s=scheduled_s,
            started_s=started,
            finished_s=loop.time(),
            outcome=outcome,
            rounds=served_rounds,
            attempts=attempts,
        )
    )


async def run_loadgen(
    host: str,
    port: int,
    *,
    mode: str = "closed",
    concurrency: int = 8,
    rate_rps: float = 20.0,
    duration_s: float = 10.0,
    warmup_s: float = 2.0,
    rounds: int = 1,
    sessions: int = 8,
    environment: str = "office",
    distance_m: float = 1.0,
    seed_base: int = 0,
    threshold_m: float = 2.0,
    connections: int | None = None,
    rng_seed: int = 0,
    deadline_ms: float = 0.0,
    retry: RetryPolicy | None = None,
    mix: Sequence[dict] | None = None,
) -> LoadgenReport:
    """Drive the service and return the measured :class:`LoadgenReport`.

    ``mode`` selects the arrival discipline (see the module docstring);
    closed-loop uses ``concurrency`` virtual clients, open-loop uses
    ``rate_rps`` Poisson arrivals (``rng_seed`` fixes the arrival
    process, so a run is reproducible end to end).  ``connections``
    caps the TCP connections the generator opens (requests multiplex);
    it defaults to ``concurrency`` capped at 8.  ``deadline_ms``
    stamps every request with a server-side deadline budget, and
    ``retry`` arms the client's self-healing path (both off by
    default, keeping steady-state benchmarks comparable to before).
    ``mix`` replaces the default seed-varied session pool with explicit
    request identities (see :class:`RequestCycler` and
    :func:`request_mix_from_corpus`); ``sessions`` / ``environment`` /
    ``distance_m`` / ``seed_base`` are ignored when it is given.
    """
    if mode not in LOADGEN_MODES:
        raise ValueError(f"mode must be one of {LOADGEN_MODES}, got {mode!r}")
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency!r}")
    if sessions < 1:
        raise ValueError(f"sessions must be >= 1, got {sessions!r}")
    if mix is not None:
        cycler = RequestCycler(mix)
    else:
        cycler = RequestCycler.uniform(
            environment, distance_m, seed_base, sessions, rounds
        )
    n_connections = connections or min(concurrency, 8)
    clients = [
        await AuthClient.connect(host, port) for _ in range(n_connections)
    ]
    samples: list[RequestSample] = []
    loop = asyncio.get_running_loop()
    start = loop.time()
    deadline = start + warmup_s + duration_s

    def next_request():
        """Cycle the request mix; stamp the run-wide policy knobs."""
        fields = cycler.next()
        fields["threshold_m"] = threshold_m
        fields["deadline_ms"] = deadline_ms
        return fields

    try:
        if mode == "closed":

            async def virtual_client(worker: int) -> None:
                client = clients[worker % n_connections]
                while loop.time() < deadline:
                    fields = next_request()
                    now = loop.time()
                    await _issue(
                        client,
                        scheduled_s=now,
                        samples=samples,
                        retry=retry,
                        **fields,
                    )

            await asyncio.gather(
                *(virtual_client(i) for i in range(concurrency))
            )
        else:
            if rate_rps <= 0:
                raise ValueError(f"rate_rps must be > 0, got {rate_rps!r}")
            arrivals = random.Random(rng_seed)
            tasks: list[asyncio.Task] = []
            scheduled = start
            while True:
                scheduled += arrivals.expovariate(rate_rps)
                if scheduled >= deadline:
                    break
                delay = scheduled - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                fields = next_request()
                client = clients[len(tasks) % n_connections]
                tasks.append(
                    loop.create_task(
                        _issue(
                            client,
                            scheduled_s=scheduled,
                            samples=samples,
                            retry=retry,
                            **fields,
                        )
                    )
                )
            if tasks:
                await asyncio.gather(*tasks)

        report = LoadgenReport(
            mode=mode,
            concurrency=concurrency,
            rate_rps=rate_rps if mode == "open" else None,
            duration_s=duration_s,
            warmup_s=warmup_s,
            rounds_per_request=rounds,
            sessions=len(cycler),
        )
        summarize(samples, report, warmup_end_s=start + warmup_s)
        try:
            replies = await clients[0].stats()
            report.scheduler_stats = [
                {
                    "shard": reply.shard,
                    "shards": reply.shards,
                    "rounds": reply.rounds,
                    "batches": reply.batches,
                    "largest_batch": reply.largest_batch,
                    "queue_high_water": reply.queue_high_water,
                    "linger_wait_s": round(reply.linger_wait_s, 6),
                    "batch_histogram": reply.batch_histogram,
                    "deadline_expired": reply.deadline_expired,
                    "dsp_timeouts": reply.dsp_timeouts,
                }
                for reply in replies
            ]
        except Exception:
            report.scheduler_stats = None
        return report
    finally:
        for client in clients:
            await client.close()
