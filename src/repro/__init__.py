"""repro — a full reproduction of PIANO (Gong et al., ICDCS 2017).

PIANO authenticates a user on a voice-powered IoT device by acoustically
measuring the distance to a *vouching device* the user carries, granting
access iff the distance is within a user-selected threshold.  This package
implements the complete system on a simulated acoustic substrate:

* :mod:`repro.core` — the ACTION ranging protocol and PIANO decision layer;
* :mod:`repro.dsp`, :mod:`repro.acoustics`, :mod:`repro.devices`,
  :mod:`repro.comms`, :mod:`repro.sim` — the substrates (signal processing,
  propagation/noise, device hardware, Bluetooth, world simulation);
* :mod:`repro.baselines` — ACTION-CC and Echo/Echo-Secure comparators;
* :mod:`repro.attacks` — the threat model's adversaries;
* :mod:`repro.eval` — experiment drivers regenerating every table and
  figure of the paper's evaluation.

Quickstart::

    from repro import AcousticWorld, AuthConfig, Point

    world = AcousticWorld(environment="office", seed=7)
    world.add_device("assistant", Point(0.0, 0.0))
    world.add_device("watch", Point(0.8, 0.0))
    world.pair("assistant", "watch")
    result = world.authenticate("assistant", "watch",
                                AuthConfig(threshold_m=1.0))
    print(result)
"""

from repro.core.action import ActionRanging, SignalPair
from repro.core.config import AuthConfig, ProtocolConfig, paper_config
from repro.core.decisions import AuthDecision, AuthResult, DenyReason
from repro.core.detection import DetectionResult, FrequencyDetector
from repro.core.exceptions import (
    ChannelSecurityError,
    ConfigurationError,
    PairingError,
    PianoError,
    ProtocolError,
    SignalNotPresentError,
)
from repro.core.frequencies import FrequencyPlan, build_frequency_plan
from repro.core.piano import PianoAuthenticator, PreAuthenticator
from repro.core.ranging import (
    DeviceObservation,
    RangingOutcome,
    RangingStatus,
    estimate_distance,
)
from repro.core.signal_construction import (
    ReferenceSignal,
    construct_reference_signal,
    signal_from_indices,
)
from repro.acoustics.environment import (
    ENVIRONMENTS,
    Environment,
    get_environment,
)
from repro.devices.device import Device
from repro.sim.geometry import Point, Room, Wall
from repro.sim.world import AcousticWorld

__version__ = "1.0.0"

__all__ = [
    "AcousticWorld",
    "ActionRanging",
    "AuthConfig",
    "AuthDecision",
    "AuthResult",
    "ChannelSecurityError",
    "ConfigurationError",
    "DenyReason",
    "DetectionResult",
    "Device",
    "DeviceObservation",
    "ENVIRONMENTS",
    "Environment",
    "FrequencyDetector",
    "FrequencyPlan",
    "PairingError",
    "PianoAuthenticator",
    "PianoError",
    "Point",
    "PreAuthenticator",
    "ProtocolConfig",
    "ProtocolError",
    "RangingOutcome",
    "RangingStatus",
    "ReferenceSignal",
    "Room",
    "SignalNotPresentError",
    "SignalPair",
    "Wall",
    "build_frequency_plan",
    "construct_reference_signal",
    "estimate_distance",
    "get_environment",
    "paper_config",
    "signal_from_indices",
    "__version__",
]
