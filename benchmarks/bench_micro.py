"""Micro-benchmarks: per-component costs behind the §VI-D latency model."""

import numpy as np

from repro.core.action import ActionRanging
from repro.core.config import ProtocolConfig
from repro.core.detection import FrequencyDetector
from repro.core.signal_construction import construct_reference_signal, signal_from_indices


def test_signal_construction_speed(benchmark):
    config = ProtocolConfig()
    rng = np.random.default_rng(0)
    benchmark(lambda: construct_reference_signal(config, rng))


def test_detector_full_scan_speed(benchmark):
    """One full two-signal scan over a 1.6 s recording — the CPU cost that
    dominates the modeled phone-side latency."""
    config = ProtocolConfig()
    action = ActionRanging(config)
    own = signal_from_indices([1, 6, 11, 16], config)
    remote = signal_from_indices([3, 8, 13], config)
    rng = np.random.default_rng(1)
    recording = rng.normal(0, 30, size=70_560)
    recording[9_000:13_096] += own.samples
    recording[45_000:49_096] += 0.4 * remote.samples
    result = benchmark(
        lambda: action.observe(recording, own, remote, config.sample_rate)
    )
    assert result.complete


def test_candidate_power_batch_speed(benchmark):
    config = ProtocolConfig()
    detector = FrequencyDetector(config)
    rng = np.random.default_rng(2)
    recording = rng.normal(0, 30, size=70_560)
    starts = np.arange(0, 66_000, 1000)
    benchmark(lambda: detector.candidate_powers(recording, starts))


def test_end_to_end_session_speed(benchmark):
    """A complete simulated ranging round (world build excluded)."""
    from tests.conftest import make_pair_world

    world = make_pair_world(environment="office", seed=3)

    def run_round():
        return world.range_once("auth", "vouch")

    outcome = benchmark.pedantic(run_round, rounds=3, iterations=1)
    assert outcome is not None
