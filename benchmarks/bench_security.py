"""Regenerates §V/§VI-E: all spoofing-attack trials are denied."""

from benchmarks.conftest import run_and_print


def test_security_attacks(benchmark, quick):
    report = run_and_print(benchmark, "security", quick)
    for attack in ("zero-effort", "guessing-replay", "all-frequency-spoof"):
        denied, trials = report.data[f"denied:{attack}"]
        assert denied == trials, f"{attack}: {trials - denied} grants"
    assert report.data["analytic:exact"] < 1e-15
    assert report.data["analytic:paper"] < 1e-8
