"""Regenerates Table II: false acceptance rates per scenario and threshold."""

from benchmarks.conftest import run_and_print
from repro.eval.experiments.table2_far import PAPER_TABLE2


def test_table2_far(benchmark, quick):
    report = run_and_print(benchmark, "table2", quick)
    for scenario, paper_row in PAPER_TABLE2.items():
        model_row = report.data[f"model_paper_sigma:{scenario}"]
        # The constant-σ model matches the printed FARs within rounding
        # (the paper's restaurant row is non-monotone — see EXPERIMENTS.md).
        for got, want in zip(model_row, paper_row):
            assert abs(got - want) < 0.15, (scenario, got, want)
        # Headline claim: every measured FAR stays below 1 %.
        measured = report.data[f"measured:{scenario}"]
        assert all(f < 1.0 for f in measured)
