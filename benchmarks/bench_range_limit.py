"""Regenerates §VI-B's maximum-range observation: d_s ≈ 2.5 m."""

from benchmarks.conftest import run_and_print


def test_range_limit(benchmark, quick):
    report = run_and_print(benchmark, "range_limit", quick)
    assert report.data["d_s"] is not None
    assert 2.0 <= report.data["d_s"] <= 3.0  # paper: around 2.5 m
    assert report.data["not_present_rate:1.5"] < 0.5
    assert report.data["not_present_rate:3.5"] >= 0.5
