"""Regenerates Figure 2(a): three concurrent users in a shared office."""

from benchmarks.conftest import run_and_print


def test_fig2a_multiuser(benchmark, quick):
    report = run_and_print(benchmark, "fig2a", quick)
    aborts, total = report.data["multiuser:not_present"]
    # Paper: 3/40 aborts; concurrent users must neither always break the
    # system nor be invisible.
    assert aborts < total
    for distance in (0.5, 1.0, 1.5, 2.0):
        stats = report.data[f"multiuser:{distance}"]
        if stats.n:
            # Typical spread near single-user office levels; the rare
            # heavy-overlap outliers are what the paper's 3/40 ⊥ absorbed.
            assert stats.robust_std_cm() < 40.0
