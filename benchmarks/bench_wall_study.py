"""Regenerates §VI-B's wall experiment: wall-separated devices are denied."""

from benchmarks.conftest import run_and_print


def test_wall_study(benchmark, quick):
    report = run_and_print(benchmark, "wall", quick)
    label_open = "open space"
    label_wall = "interior wall between devices"
    assert report.data[f"grants:{label_open}"] == report.data[f"trials:{label_open}"]
    assert report.data[f"grants:{label_wall}"] == 0
    assert (
        report.data[f"not_present:{label_wall}"]
        == report.data[f"trials:{label_wall}"]
    )
