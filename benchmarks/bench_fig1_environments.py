"""Regenerates Figure 1(a–d): ranging errors in four environments."""

from benchmarks.conftest import run_and_print


def test_fig1_environments(benchmark, quick):
    report = run_and_print(benchmark, "fig1", quick)
    # Shape assertions: every environment completes at the measured
    # distances and stays within the paper's error-bar envelope (≤ ~35 cm).
    for env in ("office", "home", "street", "restaurant"):
        for distance in (0.5, 1.0, 1.5, 2.0):
            stats = report.data[f"{env}:{distance}"]
            assert stats.n > 0, f"{env}@{distance}: no completed trials"
            assert stats.mean_abs_cm() < 35.0
