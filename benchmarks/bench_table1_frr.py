"""Regenerates Table I: false rejection rates per scenario and threshold."""

from benchmarks.conftest import run_and_print
from repro.eval.experiments.table1_frr import PAPER_TABLE1


def test_table1_frr(benchmark, quick):
    report = run_and_print(benchmark, "table1", quick)
    for scenario, paper_row in PAPER_TABLE1.items():
        # Formula check: our model at the paper-implied sigma reproduces
        # the printed row to the decimal.
        model_row = report.data[f"model_paper_sigma:{scenario}"]
        for got, want in zip(model_row, paper_row):
            assert abs(got - want) < 0.2, (scenario, got, want)
        # Shape check on the measured rows: FRR decreases with threshold.
        measured = report.data[f"measured:{scenario}"]
        assert measured[0] >= measured[-1]
