"""Hot-path throughput: per-session vs batched pipeline execution.

Measures single-process trials/sec on a Fig. 1-style plan (four
environments × four distances) for

* ``pre_refactor_per_session`` — the monolithic session loop with the
  original detector hot path (two-sided FFT over a full sliding-window
  view, all bins materialized), i.e. the engine as it existed before the
  staged-pipeline refactor;
* ``staged_per_session`` — ``RangingSession.run()`` chaining the pipeline
  stages serially (current ``--batch 1``);
* ``batched_N`` — :class:`BatchedSessionRunner` at batch sizes 1/8/16/32
  (current ``--batch N``).

All variants under the default DSP backend produce bit-identical outcomes
(asserted here as well); only the wall clock may differ.  The document
additionally records a per-stage wall-clock split of the ``batched_16``
run (RNG-bound prepare, stacked render, stacked detect, decide), a
per-DSP-backend ``batched_16`` row for every backend importable on the
host (with its bit-compatibility probe result), and two service
sections:

* **service** — requests/s through the streaming auth service
  (``repro.service``) at concurrency 1/8/32 with DSP batching on and
  off — ``c1`` with batching off is serial request-at-a-time handling,
  the baseline the concurrent batched rows must beat;
* **service_scaled** — sustained rounds/s and latency percentiles
  (p50/p95/p99, closed-loop via :mod:`repro.service.loadgen`, over real
  TCP) through the sharded front tier at 1/2/4 worker processes.  Every
  row records the host's core count: the multi-process tier can only
  beat one process when there are cores to spread over, so the
  ``workers_4 >= 2x workers_1`` expectation is conditioned on a
  multi-core host.

A **roc_sweep** section measures the decide seam's amortization
(:mod:`repro.eval.sweep`): a 16-threshold × all-scenes ROC sweep off
one render set versus naively re-rendering the scene matrix per
threshold, with render-call counts proving the sweep performs zero
renders beyond the single-threshold case.

Run as a script to (re)generate ``BENCH_pipeline.json`` at the
repository root so the perf trajectory of the hot path is tracked
in-tree::

    PYTHONPATH=src python benchmarks/bench_pipeline.py [--trials N] [--reps R]

or under the benchmark harness: ``pytest benchmarks/bench_pipeline.py``.
"""

from __future__ import annotations

import argparse
import asyncio
import gc
import json
import os
import platform
from pathlib import Path
from time import perf_counter

from repro.acoustics.environment import FIGURE1_ENVIRONMENTS
from repro.core.detection import FrequencyDetector
from repro.dsp.backend import (
    NumpyBackend,
    available_backends,
    create_backend,
    probe_bit_compatible,
    use_backend,
)
from repro.eval.engine import AUTH, VOUCH, TrialSpec, build_pair_world
from repro.sim.pipeline import BatchedSessionRunner, run_monolithic

_DISTANCES = (0.5, 1.0, 1.5, 2.0)
BATCH_SIZES = (1, 8, 16, 32)
SERVICE_CONCURRENCY = (1, 8, 32)
SERVICE_SCALED_WORKERS = (1, 2, 4)


def _fig1_specs(trials: int) -> list[TrialSpec]:
    return [
        TrialSpec(
            environment=environment,
            distance_m=distance,
            n_trials=trials,
            seed=0,
        )
        for environment in FIGURE1_ENVIRONMENTS
        for distance in _DISTANCES
    ]


def _build_sessions(spec: TrialSpec):
    sessions = []
    for trial in range(spec.n_trials):
        world = build_pair_world(
            spec.environment, spec.distance_m, spec.trial_seed(trial)
        )
        sessions.append(world.ranging_session(AUTH, VOUCH))
    return sessions


def _run_plan(specs, executor):
    """Outcomes for the whole plan; session building stays off the clock."""
    prepared = [_build_sessions(spec) for spec in specs]
    start = perf_counter()
    outcomes = [executor(sessions) for sessions in prepared]
    elapsed = perf_counter() - start
    return outcomes, elapsed


def _measure(specs, executor, reps: int):
    """Best-of-``reps`` throughput (the host's scheduler noise is large)."""
    total_trials = sum(spec.n_trials for spec in specs)
    best_elapsed = None
    outcomes = None
    for _ in range(reps):
        outcomes, elapsed = _run_plan(specs, executor)
        best_elapsed = elapsed if best_elapsed is None else min(best_elapsed, elapsed)
    return {
        "trials": total_trials,
        "seconds": round(best_elapsed, 4),
        "trials_per_s": round(total_trials / best_elapsed, 3),
    }, outcomes


def _pre_refactor_executor(sessions):
    return [run_monolithic(s.context, s.rng, s.artifacts) for s in sessions]


def _measure_backends(specs, staged, reps: int, numpy_row: dict) -> dict:
    """``batched_16`` throughput per importable DSP backend.

    The numpy row reuses the main benchmark's ``batched_16`` measurement
    (the main runs are pinned to the numpy reference backend); other
    rows note their bit-compatibility probe result and — when the probe
    holds on this host — assert outcome equality against the staged run.
    """
    rows = {"numpy": dict(numpy_row, bit_compatible_on_host=True)}
    for name in available_backends():
        if name == NumpyBackend.name:
            continue
        backend = create_backend(name)
        compatible = probe_bit_compatible(backend)
        with use_backend(backend):
            runner = BatchedSessionRunner(16)
            measurement, outcomes = _measure(specs, runner.run, reps)
        if compatible:
            assert outcomes == staged, (
                f"backend {name} probed bit-compatible but outcomes diverged"
            )
        measurement["bit_compatible_on_host"] = compatible
        rows[name] = measurement
    return rows


def _measure_stages(specs) -> dict:
    """Per-stage wall-clock split of one ``batched_16`` pass."""
    timings: dict[str, float] = {}
    runner = BatchedSessionRunner(16, stage_timings=timings)
    _run_plan(specs, runner.run)
    total = sum(timings.values())
    return {
        "seconds": {k: round(v, 4) for k, v in timings.items()},
        "fraction": {
            k: round(v / total, 3) for k, v in timings.items()
        }
        if total
        else {},
    }


def _measure_service(requests: int, rounds: int, reps: int) -> dict:
    """Requests/s through the auth service per (concurrency, batching).

    Each request runs ``rounds`` ranging rounds of a distinct trial slice
    (office, 1.0 m, seed 0) so no two requests share work.  ``batching
    off`` pins the scheduler to per-round DSP (``max_batch=1``); the
    concurrency-1 row of that column is serial request-at-a-time
    handling — the baseline the concurrent batched rows must beat.

    ``reps`` is the ``--service-reps`` knob, separate from the main
    ``--reps`` because the asyncio rows need more repetitions for a
    stable best-of.
    """
    from repro.service import AuthService, RangingRequest

    async def run_load(
        concurrency: int, batching: bool, n_requests: int | None = None
    ) -> float:
        n_requests = requests if n_requests is None else n_requests
        service = AuthService(
            batch_size=None if batching else 1,
            linger_ms=5.0,
            queue_limit=4096,
        )
        async with service:
            semaphore = asyncio.Semaphore(concurrency)

            async def one(index: int) -> None:
                async with semaphore:
                    request = RangingRequest(
                        request_id=f"bench-{index}",
                        environment="office",
                        distance_m=1.0,
                        seed=0,
                        rounds=rounds,
                        first_trial=index * rounds,
                    )
                    async for _ in service.handle_request(request):
                        pass

            start = perf_counter()
            await asyncio.gather(*(one(i) for i in range(n_requests)))
            return perf_counter() - start

    configurations = [
        (concurrency, batching)
        for concurrency in SERVICE_CONCURRENCY
        for batching in (True, False)
    ]
    # One untimed load first: warms the process-wide caches (sine rows,
    # SOS designs), the asyncio machinery, and the allocator, so the
    # first timed configuration is not systematically penalized.
    asyncio.run(run_load(8, True, n_requests=8))
    # The host's absolute speed drifts over minutes; interleaving the
    # repetitions round-robin (instead of finishing one configuration
    # before the next) spreads that drift across every row, and a
    # collection between runs keeps one configuration's garbage (capture
    # buffers, planned renders) from taxing the next.  Best-of keeps the
    # asyncio scheduling noise down.
    best: dict[tuple, float] = {}
    for _ in range(reps):
        for configuration in configurations:
            gc.collect()
            elapsed = asyncio.run(run_load(*configuration))
            if configuration not in best or elapsed < best[configuration]:
                best[configuration] = elapsed

    rows: dict[str, dict] = {}
    for concurrency, batching in configurations:
        elapsed = best[(concurrency, batching)]
        key = f"c{concurrency}_{'batched' if batching else 'batching_off'}"
        rows[key] = {
            "concurrency": concurrency,
            "batching": batching,
            "cpus": os.cpu_count(),
            "seconds": round(elapsed, 4),
            "requests_per_s": round(requests / elapsed, 3),
            "rounds_per_s": round(requests * rounds / elapsed, 3),
        }

    def _rate(key: str) -> float:
        return rows[key]["requests_per_s"]

    serial = _rate("c1_batching_off")
    return {
        "requests": requests,
        "rounds_per_request": rounds,
        "environment": "office",
        "distance_m": 1.0,
        "transport": "in-process handle_request (no TCP)",
        "rows": rows,
        "speedups_vs_serial_request_at_a_time": {
            key: round(_rate(key) / serial, 2)
            for key in rows
            if key != "c1_batching_off"
        },
    }


def _measure_service_scaled(
    worker_counts,
    duration_s: float,
    warmup_s: float,
    concurrency: int,
    rounds: int,
) -> dict:
    """Sustained rounds/s through the sharded front tier, over real TCP.

    One closed-loop load-generation run (``repro.service.loadgen``, the
    same engine behind ``tools/loadgen.py``) per worker count: fixed
    ``concurrency`` always-busy virtual clients for ``duration_s``
    measured seconds after ``warmup_s`` of discarded traffic.  Sessions
    cycle so every shard sees traffic.  Latency percentiles are
    request-completion latencies under that sustained load.

    Every row records the host's core count — the multi-process tier
    trades IPC overhead for parallelism, so its scaling is a function of
    the cores actually available (a 1-core host measures the overhead
    floor, not the speedup).
    """
    from repro.service import ShardedAuthServer
    from repro.service.loadgen import run_loadgen

    async def one(workers: int):
        front = ShardedAuthServer(
            workers, service_options={"queue_limit": 4096}
        )
        async with front:
            server = await front.serve("127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                return await run_loadgen(
                    "127.0.0.1",
                    port,
                    mode="closed",
                    concurrency=concurrency,
                    duration_s=duration_s,
                    warmup_s=warmup_s,
                    rounds=rounds,
                    sessions=8,
                    environment="office",
                    distance_m=1.0,
                    seed_base=0,
                )
            finally:
                server.close()
                await server.wait_closed()

    rows: dict[str, dict] = {}
    for workers in worker_counts:
        gc.collect()
        report = asyncio.run(one(workers))
        rows[f"workers_{workers}"] = {
            "workers": workers,
            "cpus": os.cpu_count(),
            "mode": report.mode,
            "concurrency": concurrency,
            "duration_s": duration_s,
            "warmup_s": warmup_s,
            "requests": report.requests,
            "busy": report.busy,
            "failed": report.failed,
            "requests_per_s": round(report.requests_per_s, 3),
            "rounds_per_s": round(report.rounds_per_s, 3),
            "latency_ms": {
                key: round(value, 3)
                for key, value in report.latency_ms.items()
            },
            "scheduler_stats": report.scheduler_stats,
        }

    base = rows[f"workers_{worker_counts[0]}"]["rounds_per_s"]
    return {
        "transport": "TCP via the sharded front tier (closed-loop loadgen)",
        "rounds_per_request": rounds,
        "rows": rows,
        "speedups_vs_workers_1": {
            key: round(row["rounds_per_s"] / base, 2)
            for key, row in rows.items()
            if row["workers"] != worker_counts[0]
        },
        "note": (
            "scaling expectation (workers_4 >= 2x workers_1) applies on "
            "a multi-core host; the cpus field records what this host "
            "actually had"
        ),
    }


def _measure_roc_sweep(trials: int, seed: int = 0) -> dict:
    """One-render-set ROC sweep vs naive per-threshold re-rendering.

    Three runs over the σ-measurement scene matrix (20 cells), each on a
    fresh serial engine with a fresh cache so render work is attributed
    honestly: the full 16-threshold sweep, a 1-threshold sweep (render
    parity check via the pipeline's render-call counters), and a naive
    baseline that re-runs the whole matrix once per threshold — what ROC
    generation cost before the decide seam.
    """
    from repro.eval.engine import TrialEngine, use_engine
    from repro.eval.sweep import DEFAULT_ROC_THRESHOLDS, run_roc_sweep
    from repro.sim.pipeline import (
        render_call_counts,
        reset_render_call_counts,
    )

    thresholds = DEFAULT_ROC_THRESHOLDS

    def timed(threshold_grid):
        engine = TrialEngine(jobs=1)
        reset_render_call_counts()
        start = perf_counter()
        with use_engine(engine):
            sweep = run_roc_sweep(
                trials=trials, seed=seed, thresholds=threshold_grid
            )
        elapsed = perf_counter() - start
        engine.close()
        return sweep, elapsed, render_call_counts()

    sweep, sweep_seconds, sweep_renders = timed(thresholds)
    _, single_seconds, single_renders = timed((thresholds[0],))

    reset_render_call_counts()
    naive_start = perf_counter()
    for threshold in thresholds:
        engine = TrialEngine(jobs=1)
        with use_engine(engine):
            run_roc_sweep(trials=trials, seed=seed, thresholds=(threshold,))
        engine.close()
    naive_seconds = perf_counter() - naive_start
    naive_renders = render_call_counts()

    return {
        "thresholds": len(thresholds),
        "threshold_grid_m": list(thresholds),
        "scenes": len(sweep.scenes),
        "trials_per_cell": trials,
        "rounds": sweep.rounds,
        "decisions": sweep.decisions,
        "sweep_t16": {
            "seconds": round(sweep_seconds, 4),
            "trials_per_s": round(sweep.rounds / sweep_seconds, 3),
            "renders": sweep_renders,
        },
        "sweep_t1": {
            "seconds": round(single_seconds, 4),
            "renders": single_renders,
        },
        "naive_per_threshold_t16": {
            "seconds": round(naive_seconds, 4),
            "trials_per_s": round(sweep.rounds / naive_seconds, 3),
            "renders": naive_renders,
        },
        "speedup_vs_naive": round(naive_seconds / sweep_seconds, 2),
        "zero_extra_renders_vs_t1": sweep_renders == single_renders,
    }


def run_benchmark(
    trials: int = 2,
    reps: int = 2,
    service_requests: int = 32,
    service_rounds: int = 2,
    service_reps: int = 3,
    scaled_duration_s: float = 5.0,
    scaled_warmup_s: float = 1.0,
    scaled_concurrency: int = 8,
    include_scaled: bool = True,
) -> dict:
    """Measure every variant; returns the JSON-ready result document.

    The main variant runs are pinned to the numpy reference backend so
    the document's headline rows never depend on the host's
    auto-selection outcome; the per-backend section then covers the
    alternates.
    """
    specs = _fig1_specs(trials)
    results = {}

    with use_backend("numpy"):
        original = FrequencyDetector.candidate_powers
        FrequencyDetector.candidate_powers = (
            FrequencyDetector.candidate_powers_reference
        )
        try:
            results["pre_refactor_per_session"], baseline = _measure(
                specs, _pre_refactor_executor, reps
            )
        finally:
            FrequencyDetector.candidate_powers = original

        results["staged_per_session"], staged = _measure(
            specs, lambda sessions: [s.run() for s in sessions], reps
        )
        for batch in BATCH_SIZES:
            runner = BatchedSessionRunner(batch)
            results[f"batched_{batch}"], outcomes = _measure(
                specs, runner.run, reps
            )
            assert outcomes == staged, (
                f"batched_{batch} outcomes diverged from the staged path"
            )
        stages = _measure_stages(specs)
        roc_sweep = _measure_roc_sweep(trials)
        # Measured after the trial variants so the process-wide caches
        # (sine rows, SOS designs, FFT plans) are warm, as they would be
        # in a long-running service.
        service = _measure_service(
            service_requests, service_rounds, service_reps
        )
        # The sharded tier spawns real worker processes; they select the
        # backend themselves (env var), so this runs outside use_backend.
    service_scaled = (
        _measure_service_scaled(
            SERVICE_SCALED_WORKERS,
            scaled_duration_s,
            scaled_warmup_s,
            scaled_concurrency,
            service_rounds,
        )
        if include_scaled
        else None
    )

    def _rate(name):
        return results[name]["trials_per_s"]

    return {
        "plan": {
            "style": "fig1",
            "environments": [e.name for e in FIGURE1_ENVIRONMENTS],
            "distances_m": list(_DISTANCES),
            "trials_per_cell": trials,
        },
        "reps": reps,
        "host": {
            "cpus": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "results": results,
        "stages_batched_16": stages,
        "backends_batched_16": _measure_backends(
            specs, staged, reps, results["batched_16"]
        ),
        "roc_sweep": roc_sweep,
        "service": service,
        "service_scaled": service_scaled,
        "speedups": {
            "staged_vs_pre_refactor": round(
                _rate("staged_per_session") / _rate("pre_refactor_per_session"), 2
            ),
            "batched_16_vs_pre_refactor": round(
                _rate("batched_16") / _rate("pre_refactor_per_session"), 2
            ),
            "batched_16_vs_staged": round(
                _rate("batched_16") / _rate("staged_per_session"), 2
            ),
        },
        "notes": (
            "single-process; outcomes bit-identical across all variants "
            "under the default DSP backend; pre_refactor_per_session swaps "
            "candidate_powers for the preserved reference implementation; "
            "stage split: prepare = RNG-bound negotiate/schedule/"
            "render_noise, render = stacked arrival phase, detect = "
            "stacked window batches; service rows measure the asyncio "
            "auth service (repro.service) driving the same pipeline — "
            "decisions bit-identical to the CLI engine per "
            "tests/test_service.py; service_scaled rows measure the "
            "sharded multi-process tier over TCP, bit-identical at any "
            "worker count per tests/test_service_scaling.py; roc_sweep "
            "rows measure the decide seam (repro.eval.sweep): a "
            "16-threshold sweep decides every threshold off one render "
            "set, vs re-rendering the scene matrix per threshold"
        ),
    }


def test_pipeline_throughput(benchmark, quick):
    document = benchmark.pedantic(
        lambda: run_benchmark(
            trials=2 if quick else 4,
            reps=1,
            service_requests=16 if quick else 32,
            scaled_duration_s=2.0 if quick else 5.0,
            scaled_warmup_s=0.5 if quick else 1.0,
            include_scaled=not quick,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(json.dumps(document["results"], indent=2))
    print("speedups:", document["speedups"])
    print("service:", json.dumps(document["service"]["rows"], indent=2))
    if document["service_scaled"] is not None:
        print(
            "service_scaled:",
            json.dumps(document["service_scaled"]["rows"], indent=2),
        )
    print("roc_sweep:", json.dumps(document["roc_sweep"], indent=2))
    assert document["speedups"]["batched_16_vs_pre_refactor"] > 1.0
    served = document["service"]["speedups_vs_serial_request_at_a_time"]
    assert served["c8_batched"] > 1.0
    roc = document["roc_sweep"]
    assert roc["zero_extra_renders_vs_t1"], (
        "T=16 sweep rendered more than T=1: "
        f"{roc['sweep_t16']['renders']} vs {roc['sweep_t1']['renders']}"
    )
    assert roc["speedup_vs_naive"] >= 5.0, roc["speedup_vs_naive"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trials", type=int, default=2, help="trials per cell")
    parser.add_argument("--reps", type=int, default=2, help="best-of repetitions")
    parser.add_argument(
        "--service-requests",
        type=int,
        default=32,
        help="requests per service load configuration",
    )
    parser.add_argument(
        "--service-rounds",
        type=int,
        default=2,
        help="ranging rounds per service request",
    )
    parser.add_argument(
        "--service-reps",
        type=int,
        default=3,
        help=(
            "best-of repetitions for the service rows (separate from "
            "--reps: the asyncio rows are noisier)"
        ),
    )
    parser.add_argument(
        "--scaled-duration",
        type=float,
        default=5.0,
        help="measured seconds per service_scaled worker count",
    )
    parser.add_argument(
        "--scaled-warmup",
        type=float,
        default=1.0,
        help="discarded warmup seconds per service_scaled run",
    )
    parser.add_argument(
        "--scaled-concurrency",
        type=int,
        default=8,
        help="closed-loop virtual clients for the service_scaled rows",
    )
    parser.add_argument(
        "--no-scaled",
        action="store_true",
        help="skip the service_scaled section (no worker processes)",
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"),
        help="where to write the JSON document",
    )
    args = parser.parse_args()
    document = run_benchmark(
        trials=args.trials,
        reps=args.reps,
        service_requests=args.service_requests,
        service_rounds=args.service_rounds,
        service_reps=args.service_reps,
        scaled_duration_s=args.scaled_duration,
        scaled_warmup_s=args.scaled_warmup,
        scaled_concurrency=args.scaled_concurrency,
        include_scaled=not args.no_scaled,
    )
    Path(args.output).write_text(json.dumps(document, indent=2) + "\n")
    print(json.dumps(document, indent=2))
    print(f"\nwritten to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
