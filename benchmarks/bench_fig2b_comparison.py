"""Regenerates Figure 2(b): ACTION vs ACTION-CC vs Echo-Secure."""

import math

from benchmarks.conftest import run_and_print


def test_fig2b_comparison(benchmark, quick):
    report = run_and_print(benchmark, "fig2b", quick)
    # The paper's headline: ACTION is orders of magnitude more accurate.
    action = [report.data[f"action:{d}"] for d in (0.5, 1.0, 1.5, 2.0)]
    echo = [report.data[f"echo_secure:{d}"] for d in (0.5, 1.0, 1.5, 2.0)]
    assert max(a for a in action if not math.isnan(a)) < 50.0
    finite_echo = [e for e in echo if not math.isnan(e)]
    assert finite_echo, "Echo-Secure produced no distance estimates"
    assert max(finite_echo) > 200.0  # meters of error, in cm
