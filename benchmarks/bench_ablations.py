"""Runs the design-choice ablations (reproduction extension)."""

from benchmarks.conftest import run_and_print


def test_ablations(benchmark, quick):
    report = run_and_print(benchmark, "ablations", quick)
    # θ = 0–1 starves the aggregation of smoothed-out power; θ = 5 works.
    tight = report.data["theta:1"]
    paper = report.data["theta:5"]
    assert paper.n > 0
    assert paper.not_present <= tight.not_present
