"""Regenerates §VI-D: latency ≈ 3 s, energy ≈ 0.6 % of battery per 100."""

from benchmarks.conftest import run_and_print


def test_efficiency(benchmark, quick):
    report = run_and_print(benchmark, "efficiency", quick)
    assert 2.0 < report.data["mean_elapsed_s"] < 4.5
    assert 0.3 < report.data["battery_percent_per_100"] < 1.2
    plan = report.data["pickup_plan"]
    assert plan["latency_hidden_s"] > 0.0
