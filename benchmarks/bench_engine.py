"""Trial-engine throughput: serial vs. process-pool plan execution.

Runs a Fig. 1-style plan (four environments × four distances) through
:class:`TrialEngine` at ``jobs=1`` and ``jobs=cpu_count`` with cold caches,
so the perf trajectory tracks both raw trials/sec and the pool's
scaling behaviour.  On a single-core runner the pool benchmark measures
dispatch overhead (the two should be within ~10%); on multicore hardware
it measures the speedup.
"""

from __future__ import annotations

import os

from repro.acoustics.environment import FIGURE1_ENVIRONMENTS
from repro.eval.engine import TrialEngine, TrialPlan, TrialSpec

_DISTANCES = (0.5, 1.0, 1.5, 2.0)


def _fig1_style_plan(trials: int) -> TrialPlan:
    return TrialPlan(
        "bench_engine",
        [
            TrialSpec(
                environment=environment,
                distance_m=distance,
                n_trials=trials,
                seed=0,
                key=f"{environment.name}:{distance}",
            )
            for environment in FIGURE1_ENVIRONMENTS
            for distance in _DISTANCES
        ],
    )


def _trials_for(quick: bool) -> int:
    return 2 if quick else 6


def _report_rate(label: str, engine: TrialEngine) -> None:
    counters = engine.counters
    print(
        f"\n[{label}] {counters.trials_executed} trials, "
        f"{counters.trials_per_s:.1f} trials/s (jobs={engine.jobs})"
    )


def test_engine_serial_throughput(benchmark, quick):
    plan = _fig1_style_plan(_trials_for(quick))

    def run_serial():
        # Fresh engine per round: cold cache, so the run measures execution.
        engine = TrialEngine(jobs=1)
        engine.run_plan(plan)
        return engine

    engine = benchmark.pedantic(run_serial, rounds=1, iterations=1)
    _report_rate("engine serial", engine)
    assert engine.counters.trials_executed == plan.total_trials


def test_engine_pool_throughput(benchmark, quick):
    plan = _fig1_style_plan(_trials_for(quick))
    jobs = min(4, os.cpu_count() or 1)

    def run_pool():
        with TrialEngine(jobs=jobs) as engine:
            engine.run_plan(plan)
        return engine

    engine = benchmark.pedantic(run_pool, rounds=1, iterations=1)
    _report_rate("engine pool", engine)
    assert engine.counters.trials_executed == plan.total_trials


def test_engine_cache_serves_repeat_plans(benchmark, quick):
    plan = _fig1_style_plan(_trials_for(quick))
    engine = TrialEngine(jobs=1)
    engine.run_plan(plan)  # warm the cache outside the timer

    result = benchmark.pedantic(
        lambda: engine.run_plan(plan), rounds=1, iterations=1
    )
    assert len(result) == len(plan.specs)
    assert engine.counters.cells_cached == len(plan.specs)
