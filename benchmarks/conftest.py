"""Benchmark harness configuration.

Each paper artifact gets one benchmark that runs its experiment once
(``pedantic(rounds=1)``) and prints the paper-vs-measured report, so
``pytest benchmarks/ --benchmark-only`` regenerates every table and figure
and reports how long each takes.  ``--quick`` trial counts keep the whole
suite in the minutes range; pass ``--paper-trials`` for the full counts.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--paper-trials",
        action="store_true",
        default=False,
        help="run experiments at the paper's full trial counts",
    )


@pytest.fixture(scope="session")
def quick(request) -> bool:
    """Whether to run experiments in reduced-trial quick mode."""
    return not request.config.getoption("--paper-trials")


def run_and_print(benchmark, name: str, quick: bool, trials=None):
    """Run a registered experiment under the benchmark timer, print it."""
    from repro.eval.registry import run_experiment

    report = benchmark.pedantic(
        lambda: run_experiment(name, trials=trials, seed=0, quick=quick),
        rounds=1,
        iterations=1,
    )
    print()
    print(report.to_text())
    return report
