"""Streaming authentication: concurrent clients against the auth service.

Starts the asyncio authentication service (``repro.service``) on an
ephemeral localhost port, connects one client, and fires several
authentication requests **concurrently** over the single connection:

* the user's watch on the desk (0.8 m) — should be granted;
* a colleague's phone across the office (2.5 m) — denied: over the 1 m
  threshold;
* a device in the next room (6.0 m) — denied: too far for the acoustic
  signal.

Per-round ranging decisions stream back as soon as each round's DSP
completes; because the requests are in flight together, the service
coalesces their rounds into shared stacked FFT passes (watch the
``rounds_per_batch`` stat at the end).

Run with::

    python examples/streaming_auth.py [--quick]
"""

import argparse
import asyncio

from repro.service import (
    AuthClient,
    AuthService,
    RequestComplete,
    RoundDecision,
)

SCENARIOS = [
    ("watch-on-desk", 0.8),
    ("colleague-phone", 2.5),
    ("next-room", 6.0),
]


async def authenticate_one(
    client: AuthClient, label: str, distance_m: float, rounds: int
) -> bool:
    """Stream one request's decisions, printing them as they arrive."""
    granted = False
    async for message in client.request(
        environment="office",
        distance_m=distance_m,
        seed=2017,
        rounds=rounds,
        threshold_m=1.0,
        request_id=label,
    ):
        if isinstance(message, RoundDecision):
            estimate = (
                f"{message.distance_m:.3f} m"
                if message.distance_m is not None
                else "⊥ (not present)"
            )
            print(
                f"  [{label}] round {message.round_index}: "
                f"{message.status} — {estimate}"
            )
        elif isinstance(message, RequestComplete):
            granted = message.granted
            verdict = "GRANT" if granted else f"DENY [{message.reason}]"
            print(f"  [{label}] ==> {verdict}")
    return granted


async def run(rounds: int) -> None:
    service = AuthService(batch_size=8, linger_ms=10.0)
    async with service:
        server = await service.serve("127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        print(f"service listening on 127.0.0.1:{port}\n")

        async with await AuthClient.connect("127.0.0.1", port) as client:
            results = await asyncio.gather(
                *(
                    authenticate_one(client, label, distance, rounds)
                    for label, distance in SCENARIOS
                )
            )

        stats = service.scheduler.stats
        print(
            f"\nscheduler: {stats.rounds} rounds in {stats.batches} stacked "
            f"DSP batches ({stats.rounds_per_batch:.1f} rounds/batch, "
            f"largest {stats.largest_batch})"
        )
        server.close()
        await server.wait_closed()

    assert results[0], "the nearby watch must be granted"
    assert not results[1], "a device past the threshold must be denied"
    assert not results[2], "a device in the next room must be denied"


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="one round per request (CI smoke mode)",
    )
    args = parser.parse_args(argv)
    asyncio.run(run(rounds=1 if args.quick else 2))


if __name__ == "__main__":
    main()
