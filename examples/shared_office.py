"""Shared office: three colleagues run PIANO concurrently (Fig. 2a).

Each colleague's device pair plays its own randomized reference signals.
Because every pair samples its own random frequency subsets, the
detector's β sanity check treats foreign signals as interference: most
sessions complete with slightly larger error, and the occasional deep
overlap aborts with ⊥ (the paper saw 3 aborts in 40 trials) — which an
application simply retries.
"""

import numpy as np

from repro import AcousticWorld, Point
from repro.eval.trials import concurrent_users_interference


def main() -> None:
    trials = 12
    true_distance = 1.0
    errors = []
    aborts = 0
    for trial in range(trials):
        world = AcousticWorld(environment="office", seed=900 + trial)
        world.add_device("my-phone", Point(0.0, 0.0))
        world.add_device("my-watch", Point(true_distance, 0.0))
        world.pair("my-phone", "my-watch")

        providers = concurrent_users_interference(n_other_pairs=2)(
            world, world.rngs.generator("colleagues")
        )
        outcome = world.range_once("my-phone", "my-watch", providers)
        if outcome.ok:
            errors.append(abs(outcome.require_distance() - true_distance))
        else:
            aborts += 1

    print(f"three concurrent users, true distance {true_distance} m:")
    print(
        f"  completed {len(errors)}/{trials} sessions, "
        f"mean |error| {100 * np.mean(errors):.1f} cm"
    )
    print(f"  aborted with ⊥ (retry in practice): {aborts}/{trials}")
    print("  (paper: 3/40 aborts; errors slightly above single-user office)")


if __name__ == "__main__":
    main()
