"""Threshold personalization: the FRR/FAR trade-off (§I, §VI-C).

PIANO is personalizable: each user picks the authentication threshold τ.
This example measures σ_d for the user's environment from a handful of
ranging rounds, then sweeps τ through the paper's Gaussian model to show
the trade-off — exactly the information a settings screen would need to
let a user choose between convenience (large τ) and caution (small τ).
"""

import numpy as np

from repro.eval.frr_far import GaussianAuthModel
from repro.eval.trials import run_ranging_cell

ENVIRONMENT = "home"


def main() -> None:
    # Measure sigma_d in the user's environment with a short calibration.
    errors = []
    for distance in (0.5, 1.0, 1.5):
        cell = run_ranging_cell(ENVIRONMENT, distance, n_trials=6, seed=31)
        errors.extend(cell.stats.errors_m)
    sigma = float(np.std(errors))
    print(f"environment {ENVIRONMENT!r}: measured sigma_d = {100*sigma:.1f} cm\n")

    model = GaussianAuthModel(sigma_m=sigma)
    print(f"{'τ (m)':>6s}  {'FRR':>7s}  {'FAR':>7s}  guidance")
    print("-" * 56)
    for tau in (0.3, 0.5, 0.75, 1.0, 1.5, 2.0):
        frr = 100.0 * model.frr(tau)
        far = 100.0 * model.far(tau)
        if tau <= 0.5:
            note = "cautious: shared spaces"
        elif tau <= 1.0:
            note = "balanced (paper default)"
        else:
            note = "convenient: home use"
        print(f"{tau:6.2f}  {frr:6.1f}%  {far:6.2f}%  {note}")
    print(
        "\nFRR shrinks ~1/τ while FAR creeps up — the paper's Table I/II "
        "trend; users trade convenience against exposure."
    )


if __name__ == "__main__":
    main()
