"""Smart-home scenario: walls, walk-aways, and threshold personalization.

The paper's motivating deployment: a user's smartwatch vouches for a
voice-powered home assistant.  This example walks through four moments of
a day at home:

1. the user asks the assistant for their schedule from the couch (grant);
2. the user steps into the next room — a wall now separates the devices,
   the reference signals do not cross it, and access is denied even
   though the straight-line distance is short (§VI-B);
3. the user leaves for a walk — Bluetooth goes out of range, deny;
4. a cautious user tightens the threshold to 0.5 m (personalization, §I)
   and the couch position is now too far.
"""

from repro import AcousticWorld, AuthConfig, DenyReason, Point, Room


def main() -> None:
    # Living room with a wall at x = 1.5 m separating the kitchen.
    world = AcousticWorld(
        environment="home",
        room=Room.with_dividing_wall(x=1.5),
        seed=42,
    )
    world.add_device("assistant", Point(0.0, 0.0))
    world.add_device("watch", Point(0.9, 0.0))
    world.pair("assistant", "watch")
    relaxed = AuthConfig(threshold_m=1.0)

    print("1) user on the couch, 0.9 m away:")
    print("  ", world.authenticate("assistant", "watch", relaxed))

    print("2) user in the kitchen, 1.1 m away but behind the wall:")
    world.move_device("watch", Point(2.0, 0.0))  # crosses the x=1.5 wall
    result = world.authenticate("assistant", "watch", relaxed)
    print("  ", result)
    assert result.reason in (
        DenyReason.SIGNAL_NOT_PRESENT,
        DenyReason.DISTANCE_EXCEEDS_THRESHOLD,
    )

    print("3) user out for a walk, 25 m away (Bluetooth out of range):")
    world.move_device("watch", Point(25.0, 0.0))
    result = world.authenticate("assistant", "watch", relaxed)
    print("  ", result)
    assert result.reason is DenyReason.OUT_OF_BLUETOOTH_RANGE

    print("4) cautious user: threshold tightened to 0.5 m, couch at 0.9 m:")
    world.move_device("watch", Point(0.9, 0.0))
    strict = AuthConfig(threshold_m=0.5)
    result = world.authenticate("assistant", "watch", strict)
    print("  ", result)


if __name__ == "__main__":
    main()
