"""Quickstart: pair two devices and authenticate by proximity.

A voice assistant (authenticating device) and the user's smartwatch
(vouching device) sit 0.8 m apart on a desk in a shared office.  We pair
them once (registration), then authenticate: PIANO runs the ACTION
two-way acoustic ranging protocol and grants access because the estimated
distance is within the 1 m threshold.

Run with::

    python examples/quickstart.py
"""

from repro import AcousticWorld, AuthConfig, Point


def main() -> None:
    world = AcousticWorld(environment="office", seed=2017)

    # The scene: a voice assistant on the desk, the user's watch nearby.
    world.add_device("assistant", Point(0.0, 0.0))
    world.add_device("watch", Point(0.8, 0.0))

    # Registration phase (once): Bluetooth pairing with human confirmation.
    world.pair("assistant", "watch")

    # Authentication phase: the user addresses the assistant.
    result = world.authenticate(
        "assistant", "watch", AuthConfig(threshold_m=1.0)
    )
    print(f"decision:  {result}")
    print(f"estimated: {result.distance_m:.3f} m (true 0.800 m)")
    print(f"latency:   {result.elapsed_s:.2f} s   energy: {result.energy_j:.2f} J")

    # The user walks away; an opportunistic attacker tries the assistant.
    world.move_device("watch", Point(6.0, 0.0))
    attacked = world.authenticate(
        "assistant", "watch", AuthConfig(threshold_m=1.0)
    )
    print(f"\nafter the user walks 6 m away: {attacked}")
    assert not attacked.granted, "a far-away vouching device must deny"


if __name__ == "__main__":
    main()
