"""Web authentication via proximity — the paper's §VII future-work item.

"Interesting directions for future work include adapting PIANO to other
application scenarios, e.g., web authentication."

Sketch: a laptop acts as the authenticating device for a web login; the
user's phone vouches.  The web backend issues a short-lived session token
only when PIANO grants — a second factor with zero user interaction.  The
flow also demonstrates re-authentication on demand (the site re-checks
proximity before a sensitive action) and automatic rejection once the
user walks off with their phone.
"""

import secrets
from dataclasses import dataclass, field

from repro import AcousticWorld, AuthConfig, AuthResult, Point


@dataclass
class WebSessionBackend:
    """A toy web backend gating session tokens on PIANO decisions."""

    world: AcousticWorld
    auth_config: AuthConfig
    sessions: dict[str, str] = field(default_factory=dict)

    def login(self, username: str) -> tuple[str | None, AuthResult]:
        """Issue a session token iff the user's phone vouches."""
        result = self.world.authenticate("laptop", "phone", self.auth_config)
        if not result.granted:
            return None, result
        token = secrets.token_hex(16)
        self.sessions[token] = username
        return token, result

    def step_up(self, token: str) -> tuple[bool, AuthResult]:
        """Re-check proximity before a sensitive action (e.g., payment)."""
        if token not in self.sessions:
            raise KeyError("unknown session")
        result = self.world.authenticate("laptop", "phone", self.auth_config)
        if not result.granted:
            del self.sessions[token]  # revoke on failed step-up
        return result.granted, result


def main() -> None:
    world = AcousticWorld(environment="office", seed=2024)
    world.add_device("laptop", Point(0.0, 0.0))
    world.add_device("phone", Point(0.5, 0.0))
    world.pair("laptop", "phone")  # one-time enrollment
    backend = WebSessionBackend(world, AuthConfig(threshold_m=1.0))

    token, result = backend.login("alice")
    print(f"login:   {result}")
    print(f"token:   {token}")

    ok, result = backend.step_up(token)
    print(f"step-up: {result} -> {'allowed' if ok else 'blocked'}")

    # Alice takes her phone to a meeting; an attacker sits at her desk.
    world.move_device("phone", Point(8.0, 0.0))
    ok, result = backend.step_up(token)
    print(f"attacker step-up: {result} -> {'allowed' if ok else 'blocked'}")
    print(f"session revoked: {token not in backend.sessions}")


if __name__ == "__main__":
    main()
