"""Attack gallery: every adversary from §III/§V against one setup.

The scene: the legitimate user (and their vouching watch) is 4 m away —
still inside Bluetooth range, so pairing succeeds and ranging actually
runs — while the attacker stands next to the authenticating device with a
loudspeaker.  PIANO must deny all of it.

Also shown: the secure channel keeps the reference-signal subsets away
from a radio eavesdropper, and the ambience-comparison baseline from
related work (§II) falls to the loud-music injection that PIANO shrugs
off.
"""

import numpy as np

from repro import AuthConfig, Point
from repro.attacks.all_frequency import AllFrequencySpoofAttack
from repro.attacks.ambience_injection import AmbienceInjectionAttack
from repro.attacks.guessing_replay import (
    GuessingReplayAttack,
    guess_success_probability,
)
from repro.attacks.zero_effort import ZeroEffortAttack
from repro.baselines.ambient import AmbienceAuthenticator
from repro.eval.trials import AUTH, VOUCH, build_pair_world


def main() -> None:
    auth_config = AuthConfig(threshold_m=1.0)

    print("PIANO under attack (user 4 m away, attacker at 0.3 m):")
    for attack_cls in (
        ZeroEffortAttack,
        GuessingReplayAttack,
        AllFrequencySpoofAttack,
    ):
        denials = 0
        trials = 5
        for trial in range(trials):
            world = build_pair_world("office", 4.0, seed=7000 + trial)
            attacker = world.add_device("attacker", Point(0.3, 0.0))
            attack = attack_cls(
                world=world,
                auth_name=AUTH,
                vouch_name=VOUCH,
                attacker=attacker,
                auth_config=auth_config,
            )
            if attack.run().denied:
                denials += 1
        print(f"  {attack_cls.__name__:28s} denied {denials}/{trials}")

    print(
        f"\nanalytic replay-guessing success (N=30): "
        f"{guess_success_probability(30):.2e} — negligible"
    )

    # The eavesdropper sees only ciphertext on the Bluetooth link.
    world = build_pair_world("office", 0.8, seed=99)
    world.range_once(AUTH, VOUCH)
    link = world.link_between(AUTH, VOUCH)
    frames = link.transcript
    print(
        f"\neavesdropper captured {len(frames)} ciphertext frames; "
        f"first bytes: {frames[0].ciphertext[:8].hex()}… (no subset leaks)"
    )

    # The related-work ambience comparator falls to music injection.
    world = build_pair_world("office", 6.0, seed=123)
    attacker = world.add_device("boombox", Point(3.0, 0.0))
    ambience = AmbienceAuthenticator(threshold=0.6)
    rng = np.random.default_rng(5)
    honest = ambience.similarity(
        world.device(AUTH), world.device(VOUCH),
        world.environment, world.room, world.propagation, rng,
    )
    injected = ambience.similarity(
        world.device(AUTH), world.device(VOUCH),
        world.environment, world.room, world.propagation, rng,
        extra_playbacks=AmbienceInjectionAttack(attacker).playbacks(
            0.0, rng, world.config.sample_rate
        ),
    )
    print(
        f"\nambience baseline at 6 m: similarity {honest:.2f} "
        f"(deny) → {injected:.2f} under music injection "
        f"({'GRANTED — broken' if ambience.decide(injected) else 'denied'})"
    )


if __name__ == "__main__":
    main()
