"""CI chaos smoke: SIGKILL a shard worker mid-load, verify self-healing.

Runs the same request mix twice through a two-worker
:class:`~repro.service.ShardedAuthServer` over real TCP:

1. **unfaulted** — no faults, no retries; records every decision's bits
   per session;
2. **faulted** — a :class:`~repro.service.FaultPlan` SIGKILLs one worker
   after its third routed request while concurrent clients are mid-load,
   and every client carries a :class:`~repro.service.RetryPolicy`.

The smoke then asserts the self-healing contract of
``docs/service.md#fault-tolerance``:

* the supervisor respawned the killed worker (``total_respawns >= 1``);
* **zero hung requests** — every request reached a terminal reply
  within a hard wall-clock budget (in-flight requests on the dead shard
  got structured retriable errors, not silence);
* every completed decision is **byte-identical** to the unfaulted run,
  so the granted set under the fault schedule equals (and is therefore
  a subset of) the unfaulted one.

Run with ``PYTHONPATH=src python tools/chaos_smoke.py``.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.service import (
    AuthClient,
    FaultPlan,
    KillWorker,
    RangingRequest,
    RetryPolicy,
    ShardedAuthServer,
    session_key,
    shard_for_session,
)

ENV = "quiet_lab"
WORKERS = 2
#: Hard wall-clock budget for the whole faulted client phase — the
#: "zero hung requests" assertion.  Generous because a respawned spawn
#: worker pays full package import on a cold shared runner.
HANG_BUDGET_S = 120.0


def request_mix(sessions: int, repeats: int) -> list[RangingRequest]:
    """``sessions`` distinct cells, each requested ``repeats`` times.

    Repeats matter: they guarantee traffic lands on the killed shard
    both *before* the kill (to trigger it) and *after* (to exercise the
    respawned worker), whatever the session→shard hash happens to be.
    """
    requests = []
    for repeat in range(repeats):
        for session in range(sessions):
            requests.append(
                RangingRequest(
                    request_id=f"chaos-{repeat}-{session}",
                    environment=ENV,
                    distance_m=0.8 + 0.1 * session,
                    seed=session,
                    rounds=2,
                    threshold_m=2.0,
                )
            )
    return requests


def decision_bits(served) -> tuple:
    """Everything decision-carrying in a served stream, exactly."""
    return (
        tuple(
            (
                decision.round_index,
                decision.trial,
                decision.status,
                decision.distance_m,
                decision.accepted,
                decision.elapsed_s,
                decision.energy_j,
            )
            for decision in served.rounds
        ),
        served.complete.granted,
        served.complete.reason,
        served.complete.decided_round,
    )


async def run_requests(
    port: int,
    requests: list[RangingRequest],
    retry: RetryPolicy | None,
    connections: int,
) -> dict[str, tuple]:
    """Drive ``requests`` over ``connections`` clients; session → bits."""
    queue: asyncio.Queue = asyncio.Queue()
    for request in requests:
        queue.put_nowait(request)
    results: dict[str, tuple] = {}

    async def client_loop() -> None:
        async with await AuthClient.connect("127.0.0.1", port) as client:
            while True:
                try:
                    request = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                served = await client.authenticate(
                    retry=retry,
                    request_id=request.request_id,
                    environment=request.environment,
                    distance_m=request.distance_m,
                    seed=request.seed,
                    rounds=request.rounds,
                    threshold_m=request.threshold_m,
                )
                key = session_key(request)
                bits = decision_bits(served)
                if results.setdefault(key, bits) != bits:
                    raise AssertionError(
                        f"session {key} answered differently across "
                        f"requests: {results[key]} != {bits}"
                    )

    await asyncio.gather(*(client_loop() for _ in range(connections)))
    return results


async def serve_and_run(
    fault_plan: FaultPlan | None,
    requests: list[RangingRequest],
    retry: RetryPolicy | None,
    connections: int,
) -> tuple[dict[str, tuple], int]:
    front = ShardedAuthServer(
        WORKERS,
        fault_plan=fault_plan,
        respawn_backoff_s=0.1,
        service_options=dict(batch_size=8),
    )
    async with front:
        server = await front.serve("127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        results = await asyncio.wait_for(
            run_requests(port, requests, retry, connections), HANG_BUDGET_S
        )
        respawns = front.total_respawns
        server.close()
        await server.wait_closed()
    return results, respawns


async def run_smoke(sessions: int, repeats: int, connections: int) -> int:
    requests = request_mix(sessions, repeats)
    target_shard = shard_for_session(session_key(requests[0]), WORKERS)
    plan = FaultPlan(
        kill_workers=(KillWorker(shard=target_shard, after_requests=3),)
    )
    retry = RetryPolicy(
        attempts=8,
        base_backoff_s=0.2,
        max_backoff_s=2.0,
        attempt_timeout_s=60.0,
    )

    print(
        f"chaos smoke: {len(requests)} requests over {sessions} sessions, "
        f"SIGKILL shard {target_shard} after 3 routed requests"
    )
    baseline, baseline_respawns = await serve_and_run(
        None, requests, None, connections
    )
    if baseline_respawns != 0:
        print(
            f"FAIL: unfaulted run respawned {baseline_respawns} workers",
            file=sys.stderr,
        )
        return 1

    try:
        faulted, respawns = await serve_and_run(
            plan, requests, retry, connections
        )
    except asyncio.TimeoutError:
        print(
            f"FAIL: faulted run had requests still hung after "
            f"{HANG_BUDGET_S:.0f}s",
            file=sys.stderr,
        )
        return 1

    if respawns < 1:
        print("FAIL: worker was never respawned", file=sys.stderr)
        return 1
    if set(faulted) != set(baseline):
        print(
            f"FAIL: session coverage differs: faulted served "
            f"{sorted(faulted)} vs {sorted(baseline)}",
            file=sys.stderr,
        )
        return 1
    mismatched = [key for key in baseline if faulted[key] != baseline[key]]
    if mismatched:
        for key in mismatched:
            print(f"FAIL: session {key} decisions differ", file=sys.stderr)
            print(f"  unfaulted: {baseline[key]}", file=sys.stderr)
            print(f"  faulted:   {faulted[key]}", file=sys.stderr)
        return 1

    granted = sum(1 for bits in faulted.values() if bits[1])
    print(
        f"chaos smoke ok: {respawns} respawn(s), {len(requests)} requests "
        f"all terminal, {len(baseline)} sessions byte-identical to the "
        f"unfaulted run ({granted} granted)"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sessions", type=int, default=4, help="distinct session cells"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="requests per session"
    )
    parser.add_argument(
        "--connections",
        type=int,
        default=3,
        help="concurrent client connections",
    )
    args = parser.parse_args(argv)
    return asyncio.run(
        run_smoke(args.sessions, args.repeats, args.connections)
    )


if __name__ == "__main__":
    raise SystemExit(main())
