"""Hot-list profiler for the ranging pipeline.

This is the tool that found the PR's wins: it runs a small Fig. 1-style
plan through the batched pipeline and prints either

* ``--mode wall`` (default) — the runner's per-stage wall-clock split
  (prepare / render / detect / decide) plus throughput, with negligible
  overhead, followed by a ``policy`` row timing a 16-threshold
  decision fan-out over the produced evidence (the decide seam's
  policy phase — what an ROC sweep adds on top of one render set), or
* ``--mode cumulative`` — a cProfile cumulative-time hot list, the view
  that surfaced the window-gather copies, the per-buffer Butterworth
  redesign, and the per-tone ``np.sin`` loop.

Examples
--------
::

    PYTHONPATH=src python tools/profile_pipeline.py
    PYTHONPATH=src python tools/profile_pipeline.py --mode cumulative --limit 25
    PYTHONPATH=src python tools/profile_pipeline.py --trials 8 --batch 32
    PYTHONPATH=src python tools/profile_pipeline.py --dsp-backend scipy
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
from time import perf_counter

from repro.core.decisions import ThresholdGridPolicy
from repro.dsp.backend import get_backend, select_backend, set_backend
from repro.eval.engine import AUTH, VOUCH, TrialSpec, build_pair_world
from repro.eval.sweep import DEFAULT_ROC_THRESHOLDS
from repro.sim.pipeline import BatchedSessionRunner

try:  # pragma: no cover - import-path convenience
    from benchmarks.bench_pipeline import _fig1_specs
except ImportError:  # running from a different cwd
    from repro.acoustics.environment import FIGURE1_ENVIRONMENTS

    def _fig1_specs(trials: int) -> list[TrialSpec]:
        return [
            TrialSpec(
                environment=environment,
                distance_m=distance,
                n_trials=trials,
                seed=0,
            )
            for environment in FIGURE1_ENVIRONMENTS
            for distance in (0.5, 1.0, 1.5, 2.0)
        ]


def _build_plan(trials: int):
    sessions_per_spec = []
    for spec in _fig1_specs(trials):
        sessions = []
        for trial in range(spec.n_trials):
            world = build_pair_world(
                spec.environment, spec.distance_m, spec.trial_seed(trial)
            )
            sessions.append(world.ranging_session(AUTH, VOUCH))
        sessions_per_spec.append(sessions)
    return sessions_per_spec


def _run(plan, runner):
    outcomes = []
    start = perf_counter()
    for sessions in plan:
        outcomes.extend(runner.run(sessions))
    return perf_counter() - start, outcomes


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trials", type=int, default=4, help="trials per cell")
    parser.add_argument("--batch", type=int, default=16, help="sessions per batch")
    parser.add_argument(
        "--mode",
        choices=("wall", "cumulative"),
        default="wall",
        help="wall: per-stage split; cumulative: cProfile hot list",
    )
    parser.add_argument(
        "--limit", type=int, default=30, help="rows of the cumulative hot list"
    )
    parser.add_argument(
        "--dsp-backend",
        default=None,
        metavar="NAME",
        help="profile under a specific DSP backend (default: auto-selected)",
    )
    args = parser.parse_args()

    if args.dsp_backend is not None:
        set_backend(select_backend(args.dsp_backend))
    backend = get_backend()
    plan = _build_plan(args.trials)
    n_trials = sum(len(sessions) for sessions in plan)
    print(
        f"plan: fig1 x {args.trials} trials/cell = {n_trials} trials, "
        f"batch={args.batch}, dsp-backend={backend.name}"
    )

    if args.mode == "wall":
        timings: dict[str, float] = {}
        elapsed, outcomes = _run(
            plan, BatchedSessionRunner(args.batch, stage_timings=timings)
        )
        # The decide seam's policy phase: fan every round's evidence
        # across a 16-threshold grid, timed as its own row so the cost
        # an ROC sweep adds on top of one render set is visible.
        grid = ThresholdGridPolicy(DEFAULT_ROC_THRESHOLDS)
        policy_start = perf_counter()
        for outcome in outcomes:
            grid.decide(outcome)
        policy_seconds = perf_counter() - policy_start
        print(f"total {elapsed:.3f}s = {n_trials / elapsed:.1f} trials/s")
        for stage in ("prepare", "render", "detect", "decide"):
            seconds = timings.get(stage, 0.0)
            print(f"  {stage:8s} {seconds:7.3f}s  {100 * seconds / elapsed:5.1f}%")
        print(
            f"  {'policy':8s} {policy_seconds:7.3f}s  "
            f"{100 * policy_seconds / elapsed:5.1f}%"
            f"  ({len(DEFAULT_ROC_THRESHOLDS)}-threshold fan-out, "
            f"{len(outcomes) * len(DEFAULT_ROC_THRESHOLDS)} decisions)"
        )
        return 0

    runner = BatchedSessionRunner(args.batch)
    profile = cProfile.Profile()
    profile.enable()
    elapsed, _ = _run(plan, runner)
    profile.disable()
    print(f"total {elapsed:.3f}s = {n_trials / elapsed:.1f} trials/s (profiled)")
    pstats.Stats(profile).sort_stats("cumulative").print_stats(args.limit)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
