"""CI smoke: the scenario DSL compiles faithfully and runs end to end.

Checks the contracts ``docs/scenarios.md`` advertises:

1. every builtin scenario validates, compiles, and compiles *the same
   twice* (fingerprint-deterministic within a process);
2. every example document under ``examples/scenarios/`` loads, compiles,
   and survives a dict round-trip;
3. the builtin paper scenes compile fingerprint-identical to the
   hand-built Fig. 1 / Fig. 2(a) experiment plans;
4. one new-workload plan (the hidden-command attack scene) runs end to
   end through ``repro scenario run`` and reports its cells.

Exits non-zero on the first violated contract.  Fast (< 30 s): the only
live ranging is the one-cell attack scene at 1 trial.  Run from the
repo root::

    PYTHONPATH=src python tools/scenario_smoke.py
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.acoustics.environment import FIGURE1_ENVIRONMENTS
from repro.cli import main as cli_main
from repro.eval.engine import TrialPlan, TrialSpec
from repro.eval.trials import concurrent_users_interference
from repro.scenarios import (
    BUILTIN_SCENARIOS,
    compile_scenario,
    load_scenario,
    scenario_from_dict,
    scenario_to_dict,
)

EXAMPLES = Path(__file__).resolve().parent.parent / "examples" / "scenarios"
PAPER_DISTANCES = (0.5, 1.0, 1.5, 2.0)


def check(condition: bool, label: str) -> None:
    if not condition:
        print(f"FAIL: {label}", file=sys.stderr)
        raise SystemExit(1)
    print(f"ok: {label}")


def fingerprints(plan: TrialPlan) -> list[str]:
    return [spec.fingerprint() for spec in plan.specs]


def main() -> int:
    for name, doc in BUILTIN_SCENARIOS.items():
        first = compile_scenario(doc)
        second = compile_scenario(doc)
        check(
            fingerprints(first.plan) == fingerprints(second.plan)
            and len(first.plan) > 0,
            f"builtin {name} compiles deterministically "
            f"({len(first.plan)} cells)",
        )

    examples = sorted(EXAMPLES.glob("*"))
    check(len(examples) >= 2, f"example documents present ({len(examples)})")
    for path in examples:
        doc = load_scenario(path)
        compiled = compile_scenario(doc)
        check(
            scenario_from_dict(scenario_to_dict(doc)) == doc
            and len(compiled.plan) > 0,
            f"example {path.name} loads, round-trips, compiles "
            f"({len(compiled.plan)} cells)",
        )

    fig1 = TrialPlan(
        "fig1",
        [
            TrialSpec(
                environment=environment,
                distance_m=distance,
                n_trials=10,
                seed=0,
                key=f"{environment.name}:{distance}",
            )
            for environment in FIGURE1_ENVIRONMENTS
            for distance in PAPER_DISTANCES
        ],
    )
    compiled_fig1 = TrialPlan.merge(
        "fig1",
        [
            compile_scenario(BUILTIN_SCENARIOS[f"paper-{env.name}"]).plan
            for env in FIGURE1_ENVIRONMENTS
        ],
    )
    check(
        fingerprints(compiled_fig1) == fingerprints(fig1),
        "paper scenes compile fingerprint-identical to the Fig. 1 plan",
    )

    fig2a = TrialPlan(
        "fig2a",
        [
            TrialSpec(
                environment="office",
                distance_m=distance,
                n_trials=10,
                seed=0,
                interference_factory=concurrent_users_interference(
                    n_other_pairs=2
                ),
                key=f"multiuser:{distance}",
            )
            for distance in PAPER_DISTANCES
        ],
    )
    check(
        fingerprints(compile_scenario(BUILTIN_SCENARIOS["paper-multiuser"]).plan)
        == fingerprints(fig2a),
        "paper-multiuser compiles fingerprint-identical to the Fig. 2(a) plan",
    )

    status = cli_main(
        ["scenario", "validate", *BUILTIN_SCENARIOS, *map(str, examples)]
    )
    check(status == 0, "`repro scenario validate` passes every document")

    status = cli_main(
        ["scenario", "run", "home-hidden-command", "--trials", "1"]
    )
    check(status == 0, "`repro scenario run` executes a new workload")

    print("scenario smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
