"""Load-generator CLI for the streaming authentication service.

Thin front end over :func:`repro.service.loadgen.run_loadgen` — start a
server (``python -m repro serve [--workers N]``), point this at it, and
read the sustained throughput and latency percentiles it measured.

Examples
--------
::

    # Closed loop: 8 always-busy virtual clients for 10s (+2s warmup).
    PYTHONPATH=src python tools/loadgen.py --mode closed --concurrency 8

    # Open loop: Poisson arrivals at 40 req/s, latency from scheduled
    # arrival time (coordinated-omission-safe).
    PYTHONPATH=src python tools/loadgen.py --mode open --rate 40

    # Short smoke against a sharded server, JSON to a file.
    PYTHONPATH=src python tools/loadgen.py --duration 5 --warmup 1 \\
        --port 8765 --json loadgen.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from repro.service.client import RetryPolicy
from repro.service.loadgen import LOADGEN_MODES, run_loadgen


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Generate load against a running repro serve endpoint."
    )
    parser.add_argument("--host", default="127.0.0.1", help="server host")
    parser.add_argument("--port", type=int, default=8765, help="server port")
    parser.add_argument(
        "--mode",
        choices=LOADGEN_MODES,
        default="closed",
        help="arrival discipline: closed (fixed concurrency) or open "
        "(Poisson arrivals at --rate)",
    )
    parser.add_argument(
        "--concurrency",
        type=int,
        default=8,
        help="closed loop: number of always-busy virtual clients",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=20.0,
        help="open loop: mean arrival rate in requests/s",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=10.0,
        help="measured seconds (after warmup)",
    )
    parser.add_argument(
        "--warmup",
        type=float,
        default=2.0,
        help="seconds of traffic excluded from the report",
    )
    parser.add_argument(
        "--rounds", type=int, default=1, help="ranging rounds per request"
    )
    parser.add_argument(
        "--sessions",
        type=int,
        default=8,
        help="distinct sessions (seed-varied cells) to cycle through — "
        "spreads traffic across a sharded server",
    )
    parser.add_argument(
        "--environment", default="office", help="environment preset"
    )
    parser.add_argument(
        "--distance", type=float, default=1.0, help="true pair distance (m)"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base seed of the session pool"
    )
    parser.add_argument(
        "--threshold", type=float, default=2.0, help="acceptance threshold (m)"
    )
    parser.add_argument(
        "--connections",
        type=int,
        default=None,
        help="TCP connections to multiplex over (default: min(concurrency, 8))",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retry attempts per request beyond the first on retriable "
        "failures (busy/timeout/unavailable/connection loss); 0 disables",
    )
    parser.add_argument(
        "--attempt-timeout",
        type=float,
        default=None,
        help="per-attempt timeout in seconds (catches silently lost "
        "replies); requires --retries to be useful",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=0.0,
        help="server-side deadline budget stamped on every request "
        "(0 disables)",
    )
    parser.add_argument(
        "--corpus",
        metavar="DIR",
        default=None,
        help="derive the request mix from a capture corpus: one session "
        "identity per servable recorded cell, so the server re-computes "
        "the very trials the corpus holds (overrides --sessions/"
        "--environment/--distance/--seed; see docs/corpus.md)",
    )
    parser.add_argument(
        "--scenario",
        metavar="NAME_OR_PATH",
        default=None,
        help="derive the request mix from a scenario document (builtin "
        "name or .toml/.json path): one session identity per servable "
        "compiled cell, so served traffic computes the scenario's own "
        "trials (overrides --sessions/--environment/--distance/--seed; "
        "see docs/scenarios.md)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the report as JSON ('-' for stdout only)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    retry = None
    if args.retries > 0:
        retry = RetryPolicy(
            attempts=args.retries + 1,
            attempt_timeout_s=args.attempt_timeout,
        )
    if args.corpus is not None and args.scenario is not None:
        raise SystemExit("--corpus and --scenario are mutually exclusive")
    mix = None
    if args.corpus is not None:
        from repro.service.loadgen import request_mix_from_corpus

        mix = request_mix_from_corpus(args.corpus, rounds=args.rounds)
    elif args.scenario is not None:
        from repro.service.loadgen import request_mix_from_scenario

        mix = request_mix_from_scenario(args.scenario, rounds=args.rounds)
    report = asyncio.run(
        run_loadgen(
            args.host,
            args.port,
            mode=args.mode,
            concurrency=args.concurrency,
            rate_rps=args.rate,
            duration_s=args.duration,
            warmup_s=args.warmup,
            rounds=args.rounds,
            sessions=args.sessions,
            environment=args.environment,
            distance_m=args.distance,
            seed_base=args.seed,
            threshold_m=args.threshold,
            connections=args.connections,
            deadline_ms=args.deadline_ms,
            retry=retry,
            mix=mix,
        )
    )
    payload = report.to_json()
    if args.json and args.json != "-":
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    label = (
        f"{report.concurrency} clients"
        if report.mode == "closed"
        else f"{report.rate_rps:g} req/s target"
    )
    print(
        f"{report.mode} loop, {label}: "
        f"{report.requests} requests ({report.ok} ok, {report.busy} busy, "
        f"{report.timeout} timeout, {report.error} error, "
        f"{report.failed} failed; {report.retried} retried) "
        f"in {report.measured_s:.2f}s"
    )
    print(
        f"  throughput: {report.rounds_per_s:.2f} rounds/s "
        f"({report.requests_per_s:.2f} req/s)"
    )
    if report.latency_ms:
        print(
            "  latency ms (retry-inflated): "
            + ", ".join(
                f"{key}={report.latency_ms[key]:.1f}"
                for key in ("p50", "p95", "p99", "mean", "max")
            )
        )
    if report.first_attempt_latency_ms:
        print(
            "  latency ms (first-attempt ok): "
            + ", ".join(
                f"{key}={report.first_attempt_latency_ms[key]:.1f}"
                for key in ("p50", "p95", "p99", "mean", "max")
            )
        )
    for entry in report.scheduler_stats or []:
        print(
            f"  shard {entry['shard']}/{entry['shards']}: "
            f"{entry['rounds']} rounds in {entry['batches']} batches "
            f"(largest {entry['largest_batch']}, "
            f"queue high-water {entry['queue_high_water']}, "
            f"histogram {entry['batch_histogram'] or '-'}, "
            f"deadline-expired {entry['deadline_expired']}, "
            f"dsp-timeouts {entry['dsp_timeouts']})"
        )
    if args.json == "-":
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        print()
    return 0 if report.failed == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
