"""CI smoke: the sharded front tier is byte-identical to one process.

Serves the same ranging request through ``python -m repro serve``'s
machinery at ``--workers 1`` and ``--workers 2`` (real TCP, real spawned
worker processes) and asserts the raw reply lines are byte-for-byte
equal.  This is the deployment contract of
``docs/service.md#the-multi-process-serving-tier``: adding workers may
only change throughput, never bits.

Run with ``PYTHONPATH=src python tools/shard_smoke.py``.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.service import RangingRequest, ShardedAuthServer
from repro.service.protocol import encode_message


async def served_reply_lines(workers: int, request: RangingRequest) -> list[bytes]:
    """Raw reply lines for ``request`` through a ``workers``-wide tier."""
    async with ShardedAuthServer(workers) as front:
        server = await front.serve("127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        try:
            writer.write((encode_message(request) + "\n").encode("utf-8"))
            await writer.drain()
            lines: list[bytes] = []
            while True:
                line = await reader.readline()
                if not line:
                    raise RuntimeError("server closed before request_complete")
                lines.append(line)
                if b'"request_complete"' in line or b'"error"' in line:
                    break
        finally:
            writer.close()
            await writer.wait_closed()
        server.close()
        await server.wait_closed()
        return lines


async def run_smoke(rounds: int) -> int:
    request = RangingRequest(
        request_id="shard-smoke",
        environment="office",
        distance_m=1.0,
        seed=0,
        rounds=rounds,
        threshold_m=2.0,
    )
    single = await served_reply_lines(1, request)
    sharded = await served_reply_lines(2, request)
    if single != sharded:
        print("FAIL: workers=2 reply bytes differ from workers=1", file=sys.stderr)
        for a, b in zip(single, sharded):
            if a != b:
                print(f"  workers=1: {a!r}", file=sys.stderr)
                print(f"  workers=2: {b!r}", file=sys.stderr)
        return 1
    if any(b'"error"' in line for line in single):
        print("FAIL: the request errored instead of completing", file=sys.stderr)
        print(single[-1].decode("utf-8", "replace"), file=sys.stderr)
        return 1
    print(
        f"shard smoke ok: {len(single)} reply lines byte-identical "
        f"at workers 1 and 2"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rounds", type=int, default=2, help="ranging rounds per request"
    )
    args = parser.parse_args(argv)
    return asyncio.run(run_smoke(args.rounds))


if __name__ == "__main__":
    raise SystemExit(main())
