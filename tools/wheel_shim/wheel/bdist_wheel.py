"""Minimal bdist_wheel command: just enough for PEP 660 editable builds.

setuptools' ``editable_wheel`` command only calls ``write_wheelfile`` and
``get_tag`` on this command; full wheel building is intentionally not
implemented (this environment installs projects editable-only).
"""

from __future__ import annotations

import os

from setuptools import Command


class bdist_wheel(Command):
    description = "create a wheel distribution (offline shim)"

    user_options = [
        ("dist-dir=", "d", "directory to put final built distributions in"),
        ("plat-name=", "p", "platform name to embed in generated filenames"),
    ]
    boolean_options: list[str] = []

    def initialize_options(self):
        self.dist_dir = None
        self.plat_name = None
        self.universal = False
        self.data_dir = None

    def finalize_options(self):
        if self.dist_dir is None:
            self.dist_dir = "dist"
        name = self.distribution.get_name().replace("-", "_")
        version = self.distribution.get_version()
        self.data_dir = f"{name}-{version}.data"

    @property
    def root_is_pure(self):
        return not (
            self.distribution.has_ext_modules()
            or self.distribution.has_c_libraries()
        )

    def get_tag(self):
        if not self.root_is_pure:
            raise RuntimeError(
                "the offline bdist_wheel shim only supports pure-Python "
                "projects"
            )
        return ("py3", "none", "any")

    def write_wheelfile(self, wheelfile_base, generator="bdist_wheel (offline shim)"):
        content = (
            "Wheel-Version: 1.0\n"
            f"Generator: {generator}\n"
            f"Root-Is-Purelib: {'true' if self.root_is_pure else 'false'}\n"
            f"Tag: {'-'.join(self.get_tag())}\n"
        )
        path = os.path.join(wheelfile_base, "WHEEL")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(content)

    def egg2dist(self, egginfo_path, distinfo_path):
        """Convert an .egg-info directory into a .dist-info directory.

        Mirrors the behaviour setuptools' ``dist_info`` command relies on:
        PKG-INFO becomes METADATA (with requires.txt folded into
        Requires-Dist / Provides-Extra), auxiliary egg-info files are
        copied, and the egg-info directory is removed.
        """
        import shutil

        if os.path.exists(distinfo_path):
            shutil.rmtree(distinfo_path)
        os.makedirs(distinfo_path)

        skip = {
            "PKG-INFO",
            "requires.txt",
            "SOURCES.txt",
            "not-zip-safe",
            "dependency_links.txt",
        }
        for name in sorted(os.listdir(egginfo_path)):
            if name in skip:
                continue
            shutil.copy2(
                os.path.join(egginfo_path, name),
                os.path.join(distinfo_path, name),
            )

        metadata = _pkginfo_to_metadata(
            os.path.join(egginfo_path, "PKG-INFO"),
            os.path.join(egginfo_path, "requires.txt"),
        )
        with open(
            os.path.join(distinfo_path, "METADATA"), "w", encoding="utf-8"
        ) as handle:
            handle.write(metadata)

        shutil.rmtree(egginfo_path, ignore_errors=True)

    def run(self):
        raise NotImplementedError(
            "full wheel builds are not supported by the offline shim; "
            "use editable installs (pip install -e .)"
        )


def _pkginfo_to_metadata(pkginfo_path, requires_path):
    """PKG-INFO text plus Requires-Dist/Provides-Extra from requires.txt."""
    with open(pkginfo_path, encoding="utf-8") as handle:
        pkg_info = handle.read()

    header, _, description = pkg_info.partition("\n\n")
    lines = [
        line
        for line in header.splitlines()
        if not line.startswith(("Requires-Dist:", "Provides-Extra:"))
    ]

    if os.path.exists(requires_path):
        extra = None
        marker = ""
        with open(requires_path, encoding="utf-8") as handle:
            for raw in handle:
                line = raw.strip()
                if not line:
                    continue
                if line.startswith("[") and line.endswith("]"):
                    section = line[1:-1]
                    extra, _, marker = section.partition(":")
                    if extra:
                        lines.append(f"Provides-Extra: {extra}")
                    continue
                requirement = line
                conditions = []
                if marker:
                    conditions.append(f"({marker})")
                if extra:
                    conditions.append(f'extra == "{extra}"')
                if conditions:
                    requirement = f"{line} ; {' and '.join(conditions)}"
                lines.append(f"Requires-Dist: {requirement}")

    result = "\n".join(lines) + "\n"
    if description:
        result += "\n" + description
    return result
