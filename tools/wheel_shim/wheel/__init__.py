"""Minimal offline stand-in for the `wheel` package.

This environment has no network access and no `wheel` distribution, but
setuptools' PEP 660 editable-install path (used by ``pip install -e .``)
imports ``wheel.wheelfile.WheelFile`` and resolves the ``bdist_wheel``
distutils command from this package.  The shim implements exactly the
surface those paths need; it is not a general-purpose wheel builder.
"""

__version__ = "0.41.2"
