"""A functional subset of wheel.wheelfile for offline editable installs."""

from __future__ import annotations

import csv
import hashlib
import io
import os
import re
import stat
from base64 import urlsafe_b64encode
from zipfile import ZIP_DEFLATED, ZipFile, ZipInfo

__all__ = ["WheelFile", "WheelError"]

WHEEL_INFO_RE = re.compile(
    r"^(?P<namever>(?P<name>[^\s-]+?)-(?P<ver>[^\s-]+?))"
    r"(-(?P<build>\d[^\s-]*))?-(?P<pyver>[^\s-]+?)-(?P<abi>[^\s-]+?)"
    r"-(?P<plat>\S+)\.whl$"
)


class WheelError(Exception):
    pass


def _b64_digest(data: bytes) -> str:
    return urlsafe_b64encode(hashlib.sha256(data).digest()).rstrip(b"=").decode("ascii")


class WheelFile(ZipFile):
    """ZipFile specialized for wheels: tracks hashes and writes RECORD."""

    def __init__(self, file, mode="r", compression=ZIP_DEFLATED):
        basename = os.path.basename(file)
        parsed = WHEEL_INFO_RE.match(basename)
        if parsed is None:
            raise WheelError(f"bad wheel filename {basename!r}")
        self.parsed_filename = parsed
        self.dist_info_path = "{}.dist-info".format(parsed.group("namever"))
        self.record_path = self.dist_info_path + "/RECORD"
        self._file_hashes: dict[str, str] = {}
        self._file_sizes: dict[str, int] = {}
        ZipFile.__init__(self, file, mode, compression=compression, allowZip64=True)

    # -- writing -------------------------------------------------------

    def write_files(self, base_dir):
        deferred = []
        for root, dirnames, filenames in os.walk(base_dir):
            dirnames.sort()
            for name in sorted(filenames):
                path = os.path.normpath(os.path.join(root, name))
                if not os.path.isfile(path):
                    continue
                arcname = os.path.relpath(path, base_dir).replace(os.path.sep, "/")
                if arcname == self.record_path:
                    continue
                if root.endswith(".dist-info"):
                    deferred.append((path, arcname))
                else:
                    self.write(path, arcname)
        deferred.sort()
        for path, arcname in deferred:
            self.write(path, arcname)

    def write(self, filename, arcname=None, compress_type=None):
        with open(filename, "rb") as handle:
            data = handle.read()
        if arcname is None:
            arcname = filename
        arcname = arcname.replace(os.path.sep, "/")
        zinfo = ZipInfo(arcname, date_time=(2020, 1, 1, 0, 0, 0))
        zinfo.external_attr = (stat.S_IMODE(os.stat(filename).st_mode) | stat.S_IFREG) << 16
        zinfo.compress_type = compress_type or self.compression
        self.writestr(zinfo, data)

    def writestr(self, zinfo_or_arcname, data, compress_type=None):
        if isinstance(data, str):
            data = data.encode("utf-8")
        ZipFile.writestr(self, zinfo_or_arcname, data, compress_type)
        if isinstance(zinfo_or_arcname, ZipInfo):
            fname = zinfo_or_arcname.filename
        else:
            fname = zinfo_or_arcname
        if fname != self.record_path:
            self._file_hashes[fname] = _b64_digest(data)
            self._file_sizes[fname] = len(data)

    def close(self):
        if self.fp is not None and self.mode == "w" and self._file_hashes:
            buffer = io.StringIO()
            writer = csv.writer(buffer, delimiter=",", quotechar='"', lineterminator="\n")
            for fname in sorted(self._file_hashes):
                writer.writerow(
                    (fname, f"sha256={self._file_hashes[fname]}", self._file_sizes[fname])
                )
            writer.writerow((self.record_path, "", ""))
            record = buffer.getvalue().encode("utf-8")
            self._file_hashes.clear()
            zinfo = ZipInfo(self.record_path, date_time=(2020, 1, 1, 0, 0, 0))
            zinfo.external_attr = (0o644 | stat.S_IFREG) << 16
            ZipFile.writestr(self, zinfo, record)
        ZipFile.close(self)
