"""In-tree PEP 517 build backend for fully offline environments.

``pip install -e .`` normally creates an isolated build environment and
downloads the declared build requirements into it — impossible without
network access.  This backend declares *no* build requirements and instead
re-exposes the host interpreter's already-installed setuptools to the
isolated build process (the host site-packages directory is appended to
``sys.path``, which build isolation removes but does not hide).

It is a thin delegation layer: every PEP 517/660 hook forwards to
``setuptools.build_meta``; only the ``get_requires_for_build_*`` hooks are
overridden to return nothing so pip never attempts a download.
"""

from __future__ import annotations

import os
import site
import sys


def _expose_host_site_packages() -> None:
    """Append the host's site-packages to sys.path if isolation removed it."""
    candidates: list[str] = []
    try:
        candidates.extend(site.getsitepackages())
    except (AttributeError, OSError):  # pragma: no cover - exotic layouts
        pass
    purelib = os.path.join(
        sys.prefix, "lib", f"python{sys.version_info[0]}.{sys.version_info[1]}",
        "site-packages",
    )
    candidates.append(purelib)
    for path in candidates:
        if os.path.isdir(path) and path not in sys.path:
            sys.path.append(path)


_expose_host_site_packages()

from setuptools import build_meta as _setuptools_backend  # noqa: E402


def get_requires_for_build_wheel(config_settings=None):
    return []


def get_requires_for_build_sdist(config_settings=None):
    return []


def get_requires_for_build_editable(config_settings=None):
    return []


prepare_metadata_for_build_wheel = (
    _setuptools_backend.prepare_metadata_for_build_wheel
)
prepare_metadata_for_build_editable = (
    _setuptools_backend.prepare_metadata_for_build_editable
)
build_wheel = _setuptools_backend.build_wheel
build_sdist = _setuptools_backend.build_sdist
build_editable = _setuptools_backend.build_editable
