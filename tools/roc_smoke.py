"""CI smoke: ROC sweep fan-out is free — same bits, same renders.

The decide seam's deployment contract, executable in seconds:

1. **Fan-out identity** — a single sweep fanned across the paper's four
   thresholds reports exactly the same empirical FRR/FAR columns as four
   independent single-threshold sweeps run on fresh engines.  Amortizing
   the renders may never change a decision.
2. **Render parity** — the 16-threshold default grid performs exactly as
   many render-stage calls as a 1-threshold sweep, counted at the
   ``render_noise`` / ``render_arrivals`` kernels themselves.

Run with ``PYTHONPATH=src python tools/roc_smoke.py``.
"""

from __future__ import annotations

import argparse
import sys

from repro.eval.engine import TrialEngine, use_engine
from repro.eval.frr_far import THRESHOLDS_M
from repro.eval.sweep import DEFAULT_ROC_THRESHOLDS, run_roc_sweep
from repro.sim.pipeline import render_call_counts, reset_render_call_counts


def sweep_once(thresholds: tuple[float, ...], trials: int):
    """One sweep on a fresh serial engine; returns (sweep, render counts)."""
    reset_render_call_counts()
    with use_engine(TrialEngine(jobs=1)) as engine:
        sweep = run_roc_sweep(trials=trials, seed=0, thresholds=thresholds)
        engine.close()
    return sweep, dict(render_call_counts())


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trials", type=int, default=2, help="trials per scene cell"
    )
    args = parser.parse_args()

    fanned, renders_grid = sweep_once(tuple(THRESHOLDS_M), args.trials)
    print(
        f"fanned sweep: {fanned.rounds} rounds x {len(THRESHOLDS_M)} "
        f"thresholds = {fanned.decisions} decisions, renders={renders_grid}"
    )

    failures = 0
    for i, tau in enumerate(THRESHOLDS_M):
        single, _ = sweep_once((tau,), args.trials)
        for scene in fanned.scenes:
            alone = single.scene(scene.scenario)
            same = (
                alone.empirical_frr_pct[0] == scene.empirical_frr_pct[i]
                and alone.empirical_far_pct[0] == scene.empirical_far_pct[i]
                and alone.legit_counts[0] == scene.legit_counts[i]
                and alone.attack_counts[0] == scene.attack_counts[i]
            )
            if not same:
                failures += 1
                print(
                    f"MISMATCH tau={tau} scene={scene.scenario}: "
                    f"fanned (frr={scene.empirical_frr_pct[i]}, "
                    f"far={scene.empirical_far_pct[i]}) != independent "
                    f"(frr={alone.empirical_frr_pct[0]}, "
                    f"far={alone.empirical_far_pct[0]})",
                    file=sys.stderr,
                )
    print(
        f"fan-out identity: {len(THRESHOLDS_M)} thresholds x "
        f"{len(fanned.scenes)} scenes vs independent runs, "
        f"{failures} mismatches"
    )

    _, renders_t16 = sweep_once(DEFAULT_ROC_THRESHOLDS, args.trials)
    _, renders_t1 = sweep_once((1.0,), args.trials)
    parity = renders_t16 == renders_t1 and renders_t16["noise_plans"] > 0
    print(
        f"render parity: T={len(DEFAULT_ROC_THRESHOLDS)} renders "
        f"{renders_t16} vs T=1 renders {renders_t1} -> "
        f"{'EQUAL' if parity else 'MISMATCH'}"
    )

    if failures or not parity:
        print("roc smoke FAILED", file=sys.stderr)
        return 1
    print("roc smoke OK: fan-out is bit-identical and render-free")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
