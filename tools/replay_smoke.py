"""CI smoke: the record/replay corpus loop is byte-exact and render-free.

Records a fresh mini-profile corpus into a temp directory, then checks
every contract the capture subsystem advertises (``docs/corpus.md``):

1. recording returns cells byte-identical to a plain live run;
2. strict replay reproduces every decision byte-for-byte without
   executing a single render stage (``render_call_counts`` stays zero);
3. the engine's corpus tier replays recorded cells (counters show
   ``cells_replayed``, not ``cells_executed``) with results identical
   to execution;
4. the ``repro replay`` CLI verifies the corpus and exits 0.

Exits non-zero on the first violated contract.  Fast (< 10 s): the mini
profile's 4 kHz cells are tiny.  Run from the repo root::

    PYTHONPATH=src python tools/replay_smoke.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.cli import main as cli_main
from repro.corpus import (
    ReplayingSessionRunner,
    build_capture_specs,
    canonical_outcome_json,
    outcome_to_json,
    record_cell_spec,
    CaptureCorpus,
)
from repro.eval.engine import TrialEngine, TrialPlan, run_cell_spec
from repro.sim.pipeline import render_call_counts, reset_render_call_counts


def canon(cell) -> list[str]:
    return [canonical_outcome_json(outcome_to_json(o)) for o in cell.outcomes]


def check(condition: bool, label: str) -> None:
    if not condition:
        print(f"FAIL: {label}", file=sys.stderr)
        raise SystemExit(1)
    print(f"ok: {label}")


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "corpus"
        specs = build_capture_specs(
            profile="mini", distances=[0.5, 3.0], trials=3, seed=7
        )

        live = [run_cell_spec(spec) for spec in specs]
        statuses = {o.status.value for cell in live for o in cell.outcomes}
        check(len(statuses) > 1, "mini profile exercises both decision branches")

        corpus = CaptureCorpus(root)
        recorded = [record_cell_spec(spec, corpus) for spec in specs]
        check(
            [canon(c) for c in recorded] == [canon(c) for c in live],
            "recording returns cells byte-identical to live execution",
        )

        reset_render_call_counts()
        runner = ReplayingSessionRunner(corpus)
        replayed = [runner.replay_cell(spec) for spec in specs]
        check(
            [canon(c) for c in replayed] == [canon(c) for c in live],
            "strict replay is byte-identical to live execution",
        )
        check(
            render_call_counts()
            == {"noise_plans": 0, "arrival_captures": 0},
            "replay executed zero render stages",
        )

        engine = TrialEngine(corpus=str(root))
        results = engine.run_plan(TrialPlan(name="smoke", specs=list(specs)))
        check(
            engine.counters.cells_replayed == len(specs)
            and engine.counters.cells_executed == 0,
            "engine corpus tier replays instead of executing",
        )
        check(
            [canon(c) for c in results] == [canon(c) for c in live],
            "engine corpus tier results byte-identical to live execution",
        )

        status = cli_main(["replay", "--corpus", str(root)])
        check(status == 0, "`repro replay` verifies the corpus and exits 0")

    print("replay smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
