"""Docs cross-reference checker: no dangling symbols, flags, or links.

Scans ``README.md`` and every ``docs/*.md`` for three kinds of
references and fails (exit 1, one line per problem) when any of them
does not resolve against the actual codebase:

* **Python symbols** — every dotted ``repro.…`` name appearing in inline
  code or fenced code blocks is imported (module prefix) and resolved
  attribute by attribute (``repro.sim.pipeline.detect_batch`` must
  exist, not merely parse);
* **CLI flags and subcommands** — every ``--flag`` on a ``python -m
  repro …`` line inside a fenced shell block, and every inline code span
  that is just a flag (optionally with a metavar, e.g. ``--batch N``),
  must be registered on the argparse parser (`repro.cli.build_parser`),
  and the subcommand must exist;
* **Relative links** — every ``[text](path)`` markdown link that is not
  an URL or anchor must point at an existing file.

Run from the repository root (CI's docs job does)::

    PYTHONPATH=src python tools/check_docs.py [--verbose]
"""

from __future__ import annotations

import argparse
import importlib
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

SYMBOL_RE = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")
FENCE_RE = re.compile(r"^(```|~~~)")
INLINE_CODE_RE = re.compile(r"`([^`\n]+)`")
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FLAG_RE = re.compile(r"(?<![\w-])--[a-z][a-z0-9-]*")
#: An inline code span that is exactly one flag, optionally with a
#: placeholder metavar ("--batch N", "--dsp-backend NAME").
INLINE_FLAG_RE = re.compile(r"^(--[a-z][a-z0-9-]*)(?:[= ][A-Za-z0-9_./-]+)?$")


def split_markdown(text: str) -> tuple[list[str], list[str]]:
    """Split a document into (prose lines, code-block lines)."""
    prose: list[str] = []
    code: list[str] = []
    in_code = False
    for line in text.splitlines():
        if FENCE_RE.match(line.strip()):
            in_code = not in_code
            continue
        (code if in_code else prose).append(line)
    return prose, code


def collect_symbols(text: str) -> set[str]:
    """Every dotted repro.* reference in code blocks or inline code."""
    symbols: set[str] = set()
    prose, code = split_markdown(text)
    for line in code:
        symbols.update(SYMBOL_RE.findall(line))
    for line in prose:
        for span in INLINE_CODE_RE.findall(line):
            symbols.update(SYMBOL_RE.findall(span))
    return symbols


def resolve_symbol(dotted: str) -> str | None:
    """None when ``dotted`` resolves; else a description of the failure."""
    parts = dotted.split(".")
    module = None
    consumed = 0
    for end in range(len(parts), 0, -1):
        candidate = ".".join(parts[:end])
        try:
            module = importlib.import_module(candidate)
            consumed = end
            break
        except ImportError:
            continue
        except Exception as error:  # pragma: no cover - broken module
            return f"importing {candidate} raised {error!r}"
    if module is None:
        return "no importable module prefix"
    obj = module
    for attribute in parts[consumed:]:
        try:
            obj = getattr(obj, attribute)
        except AttributeError:
            return (
                f"{type(obj).__name__} "
                f"{'.'.join(parts[:consumed])!r} has no attribute "
                f"{attribute!r}"
            )
        consumed += 1
    return None


def collect_cli_flags(text: str) -> tuple[set[str], set[str]]:
    """(flags, subcommands) referenced for the ``repro`` CLI."""
    flags: set[str] = set()
    commands: set[str] = set()
    prose, code = split_markdown(text)
    for line in code:
        if "-m repro" not in line and "piano-repro" not in line:
            continue
        tail = re.split(r"-m repro|piano-repro", line, maxsplit=1)[1]
        flags.update(FLAG_RE.findall(tail))
        first = tail.split()
        if first and not first[0].startswith("-"):
            commands.add(first[0])
    for line in prose:
        for span in INLINE_CODE_RE.findall(line):
            match = INLINE_FLAG_RE.match(span.strip())
            if match:
                flags.add(match.group(1))
    return flags, commands


def registered_cli_surface() -> tuple[set[str], set[str]]:
    """(option strings, subcommand names) of the actual CLI parser."""
    from repro.cli import build_parser

    parser = build_parser()
    flags: set[str] = set()
    commands: set[str] = set()
    parsers = [parser]
    while parsers:
        current = parsers.pop()
        for action in current._actions:
            flags.update(action.option_strings)
            if hasattr(action, "choices") and isinstance(
                action.choices, dict
            ):
                for name, sub in action.choices.items():
                    commands.add(name)
                    if isinstance(sub, argparse.ArgumentParser):
                        parsers.append(sub)
    return flags, commands


def collect_links(text: str) -> set[str]:
    links: set[str] = set()
    prose, _ = split_markdown(text)
    for line in prose:
        for target in LINK_RE.findall(line):
            if target.startswith(("http://", "https://", "#", "mailto:")):
                continue
            links.add(target.split("#")[0])
    return links


def check_document(path: Path, verbose: bool) -> list[str]:
    text = path.read_text(encoding="utf-8")
    label = path.relative_to(REPO_ROOT)
    problems: list[str] = []

    symbols = collect_symbols(text)
    for symbol in sorted(symbols):
        failure = resolve_symbol(symbol)
        if failure is not None:
            problems.append(f"{label}: dangling symbol {symbol!r} ({failure})")

    flags, commands = collect_cli_flags(text)
    known_flags, known_commands = registered_cli_surface()
    for flag in sorted(flags - known_flags):
        problems.append(f"{label}: unknown CLI flag {flag!r}")
    for command in sorted(commands - known_commands):
        problems.append(f"{label}: unknown CLI subcommand {command!r}")

    links = collect_links(text)
    for link in sorted(links):
        if link and not (path.parent / link).exists() and not (
            REPO_ROOT / link
        ).exists():
            problems.append(f"{label}: broken link {link!r}")

    if verbose:
        print(
            f"{label}: {len(symbols)} symbols, {len(flags)} flags, "
            f"{len(commands)} subcommands, {len(links)} links",
            file=sys.stderr,
        )
    return problems


def run_checks(verbose: bool = False) -> list[str]:
    documents = [REPO_ROOT / "README.md"]
    documents.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    problems: list[str] = []
    for path in documents:
        problems.extend(check_document(path, verbose))
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--verbose", action="store_true", help="per-document reference counts"
    )
    args = parser.parse_args(argv)
    problems = run_checks(verbose=args.verbose)
    for problem in problems:
        print(problem)
    if problems:
        print(f"\n{len(problems)} dangling reference(s)", file=sys.stderr)
        return 1
    print("docs check: all references resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
