"""Setuptools shim.

Metadata lives in pyproject.toml; this file exists so that editable
installs work in offline environments whose setuptools/pip lack PEP 660
support (``pip install -e .`` falls back to the legacy develop path).
"""

from setuptools import setup

setup()
